//! Task-graph construction.
//!
//! Engines compile one training iteration into a [`Graph`]: a DAG whose
//! nodes carry [`Work`] (compute on a lane, a transfer over links, credit
//! acquisition/release, or a zero-cost join) plus scheduling priority and
//! memory-accounting deltas. The graph is immutable once built and is
//! executed by [`crate::sim::simulate`].

use janus_topology::LinkId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a task inside a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub usize);

/// A serial execution lane. Tasks assigned to the same lane run one at a
/// time in priority order. One lane per GPU models the compute stream;
/// per-worker fetch lanes serialize expert pulls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LaneId(pub usize);

/// A counting credit pool (the paper's credit-based buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PoolId(pub usize);

impl From<usize> for TaskId {
    fn from(v: usize) -> Self {
        TaskId(v)
    }
}
impl From<usize> for LinkIdExt {
    fn from(v: usize) -> Self {
        LinkIdExt(LinkId(v))
    }
}

/// Thin wrapper so doctests can write `vec![0.into()]` for routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkIdExt(pub LinkId);

/// What a task does when it runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Work {
    /// Occupy `lane` for `duration` seconds.
    Compute {
        /// Serial lane the task occupies.
        lane: LaneId,
        /// Busy time in seconds.
        duration: f64,
    },
    /// Move `bytes` across `route`, sharing links max-min fairly with all
    /// other in-flight transfers. If `lane` is set, the transfer also
    /// occupies that serial lane for its whole duration (a worker that
    /// issues pulls one at a time). `latency` seconds elapse after the
    /// transfer starts before bytes begin to flow (fixed per-message
    /// issue cost: control-plane round trip, kernel launch, RDMA
    /// rendezvous); the lane is held during the latency too. An empty
    /// route or non-positive byte count completes after just the latency.
    Transfer {
        /// Directed links the flow traverses.
        route: Vec<LinkId>,
        /// Payload size in bytes.
        bytes: f64,
        /// Optional serial lane occupied while in flight.
        lane: Option<LaneId>,
        /// Fixed issue delay in seconds before bytes flow.
        latency: f64,
    },
    /// Take `amount` credits from `pool`, waiting (in priority order) if
    /// the pool lacks capacity.
    AcquireCredits {
        /// Pool to draw from.
        pool: PoolId,
        /// Number of credits taken.
        amount: u32,
    },
    /// Return `amount` credits to `pool`.
    ReleaseCredits {
        /// Pool to refill.
        pool: PoolId,
        /// Number of credits returned.
        amount: u32,
    },
    /// Zero-duration join/fork node.
    NoOp,
}

impl Work {
    /// Convenience constructor for a laneless transfer. Accepts anything
    /// convertible into link ids so tests can write `vec![0.into()]`.
    pub fn transfer(route: Vec<LinkIdExt>, bytes: f64) -> Work {
        Work::Transfer {
            route: route.into_iter().map(|l| l.0).collect(),
            bytes,
            lane: None,
            latency: 0.0,
        }
    }

    /// Convenience constructor for a transfer serialized on `lane`.
    pub fn transfer_on(route: Vec<LinkId>, bytes: f64, lane: LaneId) -> Work {
        Work::Transfer {
            route,
            bytes,
            lane: Some(lane),
            latency: 0.0,
        }
    }

    /// Short tag used in trace records.
    pub fn tag(&self) -> &'static str {
        match self {
            Work::Compute { .. } => "compute",
            Work::Transfer { .. } => "transfer",
            Work::AcquireCredits { .. } => "acquire",
            Work::ReleaseCredits { .. } => "release",
            Work::NoOp => "noop",
        }
    }
}

/// A signed memory-accounting change on one memory domain (GPU or CPU),
/// applied when the owning task starts (`at_start = true`) or finishes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemDelta {
    /// Index of the memory domain (engine-defined; typically worker rank).
    pub domain: usize,
    /// Signed byte change.
    pub bytes: f64,
    /// Apply at task start (true) or completion (false).
    pub at_start: bool,
}

/// Full description of one task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// The action performed.
    pub work: Work,
    /// Scheduling priority; lower runs first when contending for a lane
    /// or credit pool. Defaults to 0.
    pub priority: i64,
    /// Label propagated into trace records (expert id, block id, ...).
    pub label: String,
    /// Memory accounting deltas.
    pub mem: Vec<MemDelta>,
}

impl TaskSpec {
    /// A spec with default priority, empty label, no memory deltas.
    pub fn new(work: Work) -> Self {
        TaskSpec {
            work,
            priority: 0,
            label: String::new(),
            mem: Vec::new(),
        }
    }

    /// Set the priority (builder style).
    pub fn priority(mut self, p: i64) -> Self {
        self.priority = p;
        self
    }

    /// Set the label (builder style).
    pub fn label(mut self, l: impl Into<String>) -> Self {
        self.label = l.into();
        self
    }

    /// Add a memory delta (builder style).
    pub fn mem(mut self, domain: usize, bytes: f64, at_start: bool) -> Self {
        self.mem.push(MemDelta {
            domain,
            bytes,
            at_start,
        });
        self
    }
}

/// Internal task storage: spec plus dependency edges.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Task {
    /// The task description.
    pub spec: TaskSpec,
    /// Tasks that must finish before this one becomes ready.
    pub deps: Vec<TaskId>,
    /// Reverse edges, filled in by [`GraphBuilder::build`].
    pub dependents: Vec<TaskId>,
}

/// An immutable task graph ready for simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph {
    pub(crate) tasks: Vec<Task>,
    pub(crate) num_links: usize,
    pub(crate) num_domains: usize,
    pub(crate) lanes: usize,
    pub(crate) pools: Vec<u32>,
}

impl Graph {
    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Task storage (read-only).
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    /// Number of memory domains tracked.
    pub fn num_domains(&self) -> usize {
        self.num_domains
    }

    /// Number of links the graph's routes may reference.
    pub fn num_links(&self) -> usize {
        self.num_links
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph({} tasks, {} lanes, {} pools, {} links)",
            self.tasks.len(),
            self.lanes,
            self.pools.len(),
            self.num_links
        )
    }
}

/// Builder for [`Graph`].
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    tasks: Vec<Task>,
    num_links: usize,
    num_domains: usize,
    lanes: usize,
    pools: Vec<u32>,
}

impl GraphBuilder {
    /// Start a graph whose routes may reference `num_links` links and
    /// whose memory deltas may touch `num_domains` domains.
    pub fn new(num_links: usize, num_domains: usize) -> Self {
        GraphBuilder {
            tasks: Vec::new(),
            num_links,
            num_domains,
            lanes: 0,
            pools: Vec::new(),
        }
    }

    /// Allocate a serial lane.
    pub fn lane(&mut self) -> LaneId {
        let id = LaneId(self.lanes);
        self.lanes += 1;
        id
    }

    /// Allocate a credit pool with `capacity` credits.
    pub fn pool(&mut self, capacity: u32) -> PoolId {
        let id = PoolId(self.pools.len());
        self.pools.push(capacity);
        id
    }

    /// Add a task from bare work with default spec fields.
    pub fn task(&mut self, work: Work, deps: &[TaskId]) -> TaskId {
        self.add(TaskSpec::new(work), deps)
    }

    /// Add a fully specified task.
    pub fn add(&mut self, spec: TaskSpec, deps: &[TaskId]) -> TaskId {
        self.validate(&spec, deps);
        let id = TaskId(self.tasks.len());
        self.tasks.push(Task {
            spec,
            deps: deps.to_vec(),
            dependents: Vec::new(),
        });
        id
    }

    fn validate(&self, spec: &TaskSpec, deps: &[TaskId]) {
        for d in deps {
            assert!(
                d.0 < self.tasks.len(),
                "dependency {:?} does not exist yet (tasks must be added in topological order)",
                d
            );
        }
        match &spec.work {
            Work::Compute { lane, duration } => {
                assert!(lane.0 < self.lanes, "lane {:?} not allocated", lane);
                assert!(
                    duration.is_finite() && *duration >= 0.0,
                    "bad duration {duration}"
                );
            }
            Work::Transfer {
                route,
                bytes,
                lane,
                latency,
            } => {
                for l in route {
                    assert!(
                        l.index() < self.num_links,
                        "route references unknown link {l}"
                    );
                }
                assert!(bytes.is_finite(), "bad byte count {bytes}");
                assert!(
                    latency.is_finite() && *latency >= 0.0,
                    "bad latency {latency}"
                );
                if let Some(lane) = lane {
                    assert!(lane.0 < self.lanes, "lane {:?} not allocated", lane);
                }
            }
            Work::AcquireCredits { pool, amount } | Work::ReleaseCredits { pool, amount } => {
                assert!(pool.0 < self.pools.len(), "pool {:?} not allocated", pool);
                assert!(*amount > 0, "credit amount must be positive");
            }
            Work::NoOp => {}
        }
        for m in &spec.mem {
            assert!(
                m.domain < self.num_domains,
                "memory domain {} out of range",
                m.domain
            );
        }
    }

    /// Finish the graph, computing reverse edges.
    pub fn build(mut self) -> Graph {
        let mut dependents: Vec<Vec<TaskId>> = vec![Vec::new(); self.tasks.len()];
        for (i, t) in self.tasks.iter().enumerate() {
            for d in &t.deps {
                dependents[d.0].push(TaskId(i));
            }
        }
        for (t, deps) in self.tasks.iter_mut().zip(dependents) {
            t.dependents = deps;
        }
        Graph {
            tasks: self.tasks,
            num_links: self.num_links,
            num_domains: self.num_domains,
            lanes: self.lanes,
            pools: self.pools,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut g = GraphBuilder::new(0, 0);
        let a = g.task(Work::NoOp, &[]);
        let b = g.task(Work::NoOp, &[a]);
        assert_eq!(a, TaskId(0));
        assert_eq!(b, TaskId(1));
        let graph = g.build();
        assert_eq!(graph.len(), 2);
        assert_eq!(graph.task(a).dependents, vec![b]);
        assert_eq!(graph.task(b).deps, vec![a]);
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_dependency_rejected() {
        let mut g = GraphBuilder::new(0, 0);
        g.task(Work::NoOp, &[TaskId(5)]);
    }

    #[test]
    #[should_panic(expected = "not allocated")]
    fn unknown_lane_rejected() {
        let mut g = GraphBuilder::new(0, 0);
        g.task(
            Work::Compute {
                lane: LaneId(0),
                duration: 1.0,
            },
            &[],
        );
    }

    #[test]
    #[should_panic(expected = "unknown link")]
    fn unknown_link_rejected() {
        let mut g = GraphBuilder::new(1, 0);
        g.task(Work::transfer(vec![3.into()], 1.0), &[]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unknown_mem_domain_rejected() {
        let mut g = GraphBuilder::new(0, 1);
        g.add(TaskSpec::new(Work::NoOp).mem(2, 1.0, true), &[]);
    }

    #[test]
    fn spec_builders_compose() {
        let spec = TaskSpec::new(Work::NoOp)
            .priority(-3)
            .label("gate")
            .mem(0, 16.0, true);
        assert_eq!(spec.priority, -3);
        assert_eq!(spec.label, "gate");
        assert_eq!(spec.mem.len(), 1);
        assert_eq!(Work::NoOp.tag(), "noop");
    }

    #[test]
    fn lanes_and_pools_allocate() {
        let mut g = GraphBuilder::new(0, 0);
        let l0 = g.lane();
        let l1 = g.lane();
        assert_ne!(l0, l1);
        let p = g.pool(4);
        g.task(Work::AcquireCredits { pool: p, amount: 2 }, &[]);
        g.task(
            Work::Compute {
                lane: l1,
                duration: 0.5,
            },
            &[],
        );
        let graph = g.build();
        assert_eq!(graph.pools, vec![4]);
        assert_eq!(graph.lanes, 2);
        assert!(graph.to_string().contains("2 tasks"));
    }
}
