//! Where does the data-centric paradigm stop paying off? Sweep the
//! per-worker batch size and watch the crossover that the `R` metric
//! predicts (paper §5.1.3): data-centric traffic is constant in the
//! batch, expert-centric traffic grows linearly, so small batches favour
//! All-to-All and large batches favour moving experts.
//!
//! ```text
//! cargo run --release --example paradigm_crossover
//! ```

use janus::core::sim::engine::{simulate_iteration, EngineOpts};
use janus::moe::config::ModelPreset;
use janus::moe::traffic::r_for_block;
use janus::topology::ClusterSpec;

fn main() {
    let base = ModelPreset::MoeGpt.config(32);
    println!("MoE-GPT/32e on 4×8 A100s, sweeping per-worker batch size\n");
    println!(
        "{:>6} {:>8} {:>14} {:>14} {:>10}",
        "batch", "R", "EC iter (ms)", "DC iter (ms)", "DC wins?"
    );

    for batch in [4usize, 8, 16, 32, 64, 128, 256] {
        let mut model = base.clone();
        model.batch = batch;
        let block = model.moe_blocks()[0];
        let r = r_for_block(&model, block, 4, 8);

        let cluster = ClusterSpec::a100(4, 8).build();
        let ec = simulate_iteration(
            cluster.clone(),
            model.clone(),
            &EngineOpts::janus_expert_centric(),
        )
        .expect("expert-centric run");
        let dc = simulate_iteration(cluster, model, &EngineOpts::data_centric(true, true))
            .expect("data-centric run");

        println!(
            "{:>6} {:>8.2} {:>14.1} {:>14.1} {:>10}",
            batch,
            r,
            ec.iter_time * 1e3,
            dc.iter_time * 1e3,
            if dc.iter_time < ec.iter_time {
                "yes"
            } else {
                "no"
            }
        );
    }

    println!("\nJanus's unified mode picks the winner per MoE block automatically,");
    println!("which is why it never loses to either pure paradigm (paper Figure 17).");
}
