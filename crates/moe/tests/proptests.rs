//! Property tests for gate routing, expert math, and the traffic model.

use janus_moe::config::{BlockKind, ModelConfig};
use janus_moe::expert::{ExpertFfn, ExpertGrads, ExpertScratch};
use janus_moe::gate::TopKGate;
use janus_moe::traffic::{iteration_traffic_dc, iteration_traffic_ec, r_metric};
use janus_tensor::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn model(b: usize, s: usize, k: usize, h: usize, experts: usize, moe_blocks: usize) -> ModelConfig {
    let mut blocks = vec![BlockKind::Transformer; 4];
    for block in blocks.iter_mut().take(moe_blocks.min(4)) {
        *block = BlockKind::Moe { experts };
    }
    ModelConfig {
        name: "prop".into(),
        blocks,
        hidden_dim: h,
        batch: b,
        seq_len: s,
        top_k: k.min(experts),
        dtype_bytes: 2,
        vocab: 100,
    }
}

proptest! {
    /// The closed forms are consistent: `R > 1 ⇔ Comm_DC < Comm_EC` for
    /// any configuration (the identity the unified policy relies on).
    #[test]
    fn r_metric_is_consistent_with_traffic_forms(
        b in 1usize..64,
        s in 1usize..256,
        k in 1usize..4,
        h_pow in 5usize..9,
        n in 2usize..5,
        m in 1usize..4,
        e_per in 1usize..3,
    ) {
        let h = 1 << h_pow;
        let experts = n * m * e_per;
        let cfg = model(b, s, k, h, experts, 1);
        let dc = iteration_traffic_dc(&cfg, n, m);
        let ec = iteration_traffic_ec(&cfg, n, m);
        let r = r_metric(cfg.batch, cfg.seq_len, cfg.top_k, n, h, e_per);
        prop_assert!((r > 1.0) == (dc < ec),
            "R = {r} but dc = {dc}, ec = {ec}");
        // And the ratio actually equals R.
        if dc > 0.0 {
            prop_assert!((ec / dc - r).abs() / r < 1e-9);
        }
    }

    /// Traffic scales linearly in the number of MoE blocks.
    #[test]
    fn traffic_is_linear_in_moe_blocks(blocks in 1usize..4) {
        let one = model(8, 32, 2, 64, 8, 1);
        let many = model(8, 32, 2, 64, 8, blocks);
        let f = blocks as f64;
        prop_assert!((iteration_traffic_dc(&many, 2, 4) - f * iteration_traffic_dc(&one, 2, 4)).abs() < 1.0);
        prop_assert!((iteration_traffic_ec(&many, 2, 4) - f * iteration_traffic_ec(&one, 2, 4)).abs() < 1.0);
    }

    /// Gate routing always yields k distinct experts with normalized,
    /// descending weights — for any weights and inputs.
    #[test]
    fn routing_invariants(
        seed in any::<u64>(),
        tokens in 1usize..20,
        experts in 2usize..9,
        k in 1usize..4,
    ) {
        let k = k.min(experts);
        let mut rng = StdRng::seed_from_u64(seed);
        let gate = TopKGate::new(6, experts, k, &mut rng);
        let x = Matrix::uniform(tokens, 6, 2.0, &mut rng);
        let routing = gate.route(&x);
        prop_assert_eq!(routing.experts.len(), tokens);
        for (es, ws) in routing.experts.iter().zip(&routing.weights) {
            prop_assert_eq!(es.len(), k);
            let mut dedup = es.clone();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), k, "duplicate expert for a token");
            let sum: f32 = ws.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            for w in ws.windows(2) {
                prop_assert!(w[0] >= w[1] - 1e-6);
            }
        }
        // tokens_for partitions exactly tokens*k slots.
        let total: usize = (0..experts).map(|e| routing.tokens_for(e).len()).sum();
        prop_assert_eq!(total, tokens * k);
    }

    /// Expert gradient additivity across arbitrary batch splits — the
    /// property that makes per-machine pre-reduction exact.
    #[test]
    fn gradients_add_across_splits(seed in any::<u64>(), split in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let e = ExpertFfn::new(4, &mut rng);
        let x = Matrix::uniform(6, 4, 0.5, &mut rng);
        let dy = Matrix::uniform(6, 4, 0.5, &mut rng);
        let (_, cache) = e.forward(&x);
        let (full, _) = e.backward(&cache, &dy);

        let cut = split.min(5);
        let idx_a: Vec<usize> = (0..cut).collect();
        let idx_b: Vec<usize> = (cut..6).collect();
        let mut sum = ExpertGrads::zeros_like(&e);
        for idx in [idx_a, idx_b] {
            if idx.is_empty() {
                continue;
            }
            let (_, c) = e.forward(&x.gather_rows(&idx));
            let (g, _) = e.backward(&c, &dy.gather_rows(&idx));
            sum.accumulate(&g);
        }
        prop_assert!(sum.max_abs_diff(&full) < 1e-3);
    }

    /// A scratch reused across passes of varying token counts produces
    /// bit-identical outputs, input gradients, and weight gradients to
    /// freshly allocated passes — buffer recycling is invisible to the
    /// numerics.
    #[test]
    fn scratch_reuse_is_bitwise_invisible(
        seed in any::<u64>(),
        token_counts in prop::collection::vec(1usize..10, 1..6),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let e = ExpertFfn::new(4, &mut rng);
        let mut s = ExpertScratch::new();
        for tokens in token_counts {
            let x = Matrix::uniform(tokens, 4, 0.8, &mut rng);
            let dy = Matrix::uniform(tokens, 4, 0.8, &mut rng);

            let (y_fresh, cache) = e.forward(&x);
            let (g_fresh, dx_fresh) = e.backward(&cache, &dy);

            s.set_input(&x);
            e.forward_scratch(&mut s);
            prop_assert_eq!(s.y.max_abs_diff(&y_fresh), 0.0);
            e.backward_scratch(&dy, &mut s);
            prop_assert_eq!(s.dx.max_abs_diff(&dx_fresh), 0.0);
            prop_assert_eq!(s.grad.max_abs_diff(&g_fresh), 0.0);
        }
    }

}
