//! In-process transport over crossbeam channels.

use crate::message::Message;
use crate::transport::{CommError, Transport};
use crossbeam::channel::{unbounded, Receiver, Sender};

/// One endpoint of an in-process mesh. Cheap to create; delivery is
/// ordered per sender-receiver pair (channel semantics), matching TCP.
pub struct LocalTransport {
    rank: usize,
    /// `senders[j]` delivers into rank j's inbox.
    senders: Vec<Sender<(usize, Message)>>,
    inbox: Receiver<(usize, Message)>,
}

/// Build a fully connected in-process mesh of `world` endpoints.
pub fn local_mesh(world: usize) -> Vec<LocalTransport> {
    assert!(world > 0, "world must be non-empty");
    let mut senders = Vec::with_capacity(world);
    let mut inboxes = Vec::with_capacity(world);
    for _ in 0..world {
        let (tx, rx) = unbounded();
        senders.push(tx);
        inboxes.push(rx);
    }
    inboxes
        .into_iter()
        .enumerate()
        .map(|(rank, inbox)| LocalTransport {
            rank,
            senders: senders.clone(),
            inbox,
        })
        .collect()
}

impl Transport for LocalTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.senders.len()
    }

    fn send(&self, to: usize, msg: Message) -> Result<(), CommError> {
        assert!(to < self.senders.len(), "rank {to} out of range");
        let _span = crate::obs::send_hook(self.rank, to, &msg);
        self.senders[to]
            .send((self.rank, msg))
            .map_err(|_| CommError::Disconnected)
    }

    fn recv(&self) -> Result<(usize, Message), CommError> {
        let _span = crate::obs::recv_wait_hook(self.rank);
        let m = self.inbox.recv().map_err(|_| CommError::Disconnected)?;
        crate::obs::recv_hook(self.rank, &m.1);
        Ok(m)
    }

    fn try_recv(&self) -> Result<Option<(usize, Message)>, CommError> {
        use crossbeam::channel::TryRecvError;
        match self.inbox.try_recv() {
            Ok(m) => {
                crate::obs::recv_hook(self.rank, &m.1);
                Ok(Some(m))
            }
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(CommError::Disconnected),
        }
    }

    fn recv_timeout(
        &self,
        timeout: std::time::Duration,
    ) -> Result<Option<(usize, Message)>, CommError> {
        use crossbeam::channel::RecvTimeoutError;
        match self.inbox.recv_timeout(timeout) {
            Ok(m) => {
                crate::obs::recv_hook(self.rank, &m.1);
                Ok(Some(m))
            }
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(CommError::Disconnected),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn mesh_delivers_between_ranks() {
        let mut mesh = local_mesh(2);
        let b = mesh.pop().unwrap();
        let a = mesh.pop().unwrap();
        assert_eq!(a.rank(), 0);
        assert_eq!(b.world_size(), 2);
        a.send(1, Message::Barrier { epoch: 7 }).unwrap();
        let (from, msg) = b.recv().unwrap();
        assert_eq!(from, 0);
        assert_eq!(msg, Message::Barrier { epoch: 7 });
    }

    #[test]
    fn self_send_loops_back() {
        let mesh = local_mesh(1);
        let a = &mesh[0];
        a.send(0, Message::Shutdown).unwrap();
        assert_eq!(a.recv().unwrap(), (0, Message::Shutdown));
    }

    #[test]
    fn per_pair_ordering_preserved() {
        let mut mesh = local_mesh(2);
        let b = mesh.pop().unwrap();
        let a = mesh.pop().unwrap();
        for i in 0..10u64 {
            a.send(1, Message::Barrier { epoch: i }).unwrap();
        }
        for i in 0..10u64 {
            assert_eq!(b.recv().unwrap().1, Message::Barrier { epoch: i });
        }
    }

    #[test]
    fn payloads_pass_through_untouched() {
        let mut mesh = local_mesh(2);
        let b = mesh.pop().unwrap();
        let a = mesh.pop().unwrap();
        let data = Bytes::from((0..=255u8).collect::<Vec<_>>());
        a.send(
            1,
            Message::ExpertPayload {
                block: 0,
                expert: 1,
                nonce: 0,
                data: data.clone(),
            },
        )
        .unwrap();
        match b.recv().unwrap().1 {
            Message::ExpertPayload { data: got, .. } => assert_eq!(got, data),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_to_unknown_rank_panics() {
        let mesh = local_mesh(1);
        let _ = mesh[0].send(3, Message::Shutdown);
    }

    #[test]
    fn recv_timeout_expires_and_delivers() {
        let mut mesh = local_mesh(2);
        let b = mesh.pop().unwrap();
        let a = mesh.pop().unwrap();
        assert!(b
            .recv_timeout(std::time::Duration::from_millis(2))
            .unwrap()
            .is_none());
        a.send(1, Message::Barrier { epoch: 4 }).unwrap();
        assert_eq!(
            b.recv_timeout(std::time::Duration::from_millis(100))
                .unwrap(),
            Some((0, Message::Barrier { epoch: 4 }))
        );
    }
}
