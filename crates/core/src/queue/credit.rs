//! Credit-based buffer (paper §5.1.1).
//!
//! A GPU cannot host every expert of a block at once. The Intra-Node
//! Scheduler pre-allocates a buffer of `C` expert slots; each pull
//! consumes a credit and each completed expert computation (after the
//! expert is offloaded to CPU memory) releases one. When credits run out,
//! further pulls block until a slot frees up.

use parking_lot::{Condvar, Mutex};
use std::time::Duration;

/// A counting credit pool with blocking acquire.
#[derive(Debug)]
pub struct CreditBuffer {
    capacity: u32,
    state: Mutex<u32>,
    available: Condvar,
}

/// RAII guard for one or more credits; returns them on drop.
#[derive(Debug)]
pub struct CreditGuard<'a> {
    buffer: &'a CreditBuffer,
    amount: u32,
}

impl CreditBuffer {
    /// A buffer with `capacity` expert slots.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "a credit buffer needs at least one slot");
        CreditBuffer {
            capacity,
            state: Mutex::new(capacity),
            available: Condvar::new(),
        }
    }

    /// Total slots.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Currently free slots.
    pub fn available(&self) -> u32 {
        *self.state.lock()
    }

    /// Block until `amount` credits are free, then take them.
    pub fn acquire(&self, amount: u32) -> CreditGuard<'_> {
        assert!(
            amount <= self.capacity,
            "acquiring {amount} credits from a buffer of {} can never succeed",
            self.capacity
        );
        let mut free = self.state.lock();
        while *free < amount {
            self.available.wait(&mut free);
        }
        *free -= amount;
        CreditGuard {
            buffer: self,
            amount,
        }
    }

    /// Try to take `amount` credits without blocking.
    pub fn try_acquire(&self, amount: u32) -> Option<CreditGuard<'_>> {
        let mut free = self.state.lock();
        if *free >= amount {
            *free -= amount;
            Some(CreditGuard {
                buffer: self,
                amount,
            })
        } else {
            None
        }
    }

    /// Acquire with a timeout; `None` if it expires.
    pub fn acquire_timeout(&self, amount: u32, timeout: Duration) -> Option<CreditGuard<'_>> {
        assert!(amount <= self.capacity);
        let mut free = self.state.lock();
        let deadline = std::time::Instant::now() + timeout;
        while *free < amount {
            if self.available.wait_until(&mut free, deadline).timed_out() {
                return None;
            }
        }
        *free -= amount;
        Some(CreditGuard {
            buffer: self,
            amount,
        })
    }

    fn release(&self, amount: u32) {
        let mut free = self.state.lock();
        *free += amount;
        debug_assert!(*free <= self.capacity, "credit over-release");
        self.available.notify_all();
    }
}

impl Drop for CreditGuard<'_> {
    fn drop(&mut self) {
        self.buffer.release(self.amount);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn acquire_and_drop_cycle() {
        let buf = CreditBuffer::new(2);
        assert_eq!(buf.available(), 2);
        let g1 = buf.acquire(1);
        let g2 = buf.acquire(1);
        assert_eq!(buf.available(), 0);
        assert!(buf.try_acquire(1).is_none());
        drop(g1);
        assert_eq!(buf.available(), 1);
        drop(g2);
        assert_eq!(buf.available(), 2);
    }

    #[test]
    fn blocking_acquire_wakes_on_release() {
        let buf = Arc::new(CreditBuffer::new(1));
        let guard = buf.acquire(1);
        let buf2 = buf.clone();
        let t = std::thread::spawn(move || {
            let _g = buf2.acquire(1); // blocks until main drops
            buf2.available()
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(guard);
        assert_eq!(t.join().unwrap(), 0);
    }

    #[test]
    fn concurrency_never_exceeds_capacity() {
        let buf = Arc::new(CreditBuffer::new(3));
        let in_flight = Arc::new(AtomicU32::new(0));
        let peak = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for _ in 0..12 {
            let (buf, in_flight, peak) = (buf.clone(), in_flight.clone(), peak.clone());
            handles.push(std::thread::spawn(move || {
                let _g = buf.acquire(1);
                let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(5));
                in_flight.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 3);
        assert_eq!(buf.available(), 3);
    }

    #[test]
    fn timeout_expires_when_starved() {
        let buf = CreditBuffer::new(1);
        let _g = buf.acquire(1);
        assert!(buf.acquire_timeout(1, Duration::from_millis(10)).is_none());
    }

    #[test]
    #[should_panic(expected = "can never succeed")]
    fn over_capacity_acquire_panics() {
        let buf = CreditBuffer::new(1);
        let _ = buf.acquire(2);
    }

    #[test]
    fn multi_credit_acquire() {
        let buf = CreditBuffer::new(4);
        let g = buf.acquire(3);
        assert_eq!(buf.available(), 1);
        assert!(buf.try_acquire(2).is_none());
        drop(g);
        assert!(buf.try_acquire(2).is_some());
    }
}
