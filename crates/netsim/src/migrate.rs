//! Deterministic pricing of expert-migration traffic.
//!
//! A placement change ships whole expert blobs between machines at an
//! iteration boundary. This module answers, without running anything,
//! "how long will that bulk move take and how many cross-machine bytes
//! does it cost?" using the same fluid model as the simulator: each
//! machine has one uplink and one downlink of fixed capacity, a
//! cross-machine blob is a flow over `[uplink(src), downlink(dst)]`,
//! all concurrent flows share links max-min fairly
//! ([`crate::fair::max_min_rates`]), and the makespan is the slowest
//! flow's finish time. Intra-machine moves (NVLink/PCIe copies, orders
//! of magnitude faster than the network) are priced as free.
//!
//! The estimate is a pure function of its inputs, so the elastic driver
//! can weigh "pay this migration now" against "keep eating the skew"
//! deterministically — the same decision on every rank and every rerun.

use crate::fair::max_min_rates;
use janus_topology::LinkId;

/// Per-machine network capacity for migration pricing: every machine
/// gets one uplink and one downlink of the given byte-per-second rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationNet {
    /// Number of machines.
    pub machines: usize,
    /// Uplink capacity per machine, bytes/second.
    pub uplink_bps: f64,
    /// Downlink capacity per machine, bytes/second.
    pub downlink_bps: f64,
}

impl MigrationNet {
    /// A symmetric network: every machine sends and receives at `bps`.
    pub fn symmetric(machines: usize, bps: f64) -> Self {
        MigrationNet {
            machines,
            uplink_bps: bps,
            downlink_bps: bps,
        }
    }

    fn uplink(&self, machine: usize) -> LinkId {
        LinkId(2 * machine)
    }

    fn downlink(&self, machine: usize) -> LinkId {
        LinkId(2 * machine + 1)
    }

    fn capacities(&self) -> Vec<f64> {
        (0..self.machines)
            .flat_map(|_| [self.uplink_bps, self.downlink_bps])
            .collect()
    }
}

/// One expert blob in flight: `bytes` moving from `src_machine` to
/// `dst_machine`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationFlow {
    /// Machine losing the expert.
    pub src_machine: usize,
    /// Machine gaining the expert.
    pub dst_machine: usize,
    /// Serialized expert-state size.
    pub bytes: u64,
}

/// What a migration costs under the fluid model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationEstimate {
    /// Seconds until the last cross-machine blob lands, with every
    /// concurrent flow sharing uplinks/downlinks max-min fairly.
    pub makespan_s: f64,
    /// Bytes that actually cross the network.
    pub cross_machine_bytes: u64,
    /// Bytes that move within a machine (priced as free).
    pub intra_machine_bytes: u64,
    /// Number of cross-machine flows.
    pub cross_flows: usize,
}

/// Price `flows` against `net`. Deterministic: the estimate depends only
/// on the arguments, never on iteration order or wall-clock.
pub fn price_migration(net: &MigrationNet, flows: &[MigrationFlow]) -> MigrationEstimate {
    for f in flows {
        assert!(
            f.src_machine < net.machines && f.dst_machine < net.machines,
            "flow {f:?} references a machine outside the {}-machine net",
            net.machines
        );
    }
    let cross: Vec<&MigrationFlow> = flows
        .iter()
        .filter(|f| f.src_machine != f.dst_machine && f.bytes > 0)
        .collect();
    let intra_machine_bytes = flows
        .iter()
        .filter(|f| f.src_machine == f.dst_machine)
        .map(|f| f.bytes)
        .sum();
    let routes: Vec<Vec<LinkId>> = cross
        .iter()
        .map(|f| vec![net.uplink(f.src_machine), net.downlink(f.dst_machine)])
        .collect();
    let rates = max_min_rates(&routes, &net.capacities());
    let makespan_s = cross
        .iter()
        .zip(&rates)
        .map(|(f, &rate)| f.bytes as f64 / rate)
        .fold(0.0, f64::max);
    MigrationEstimate {
        makespan_s,
        cross_machine_bytes: cross.iter().map(|f| f.bytes).sum(),
        intra_machine_bytes,
        cross_flows: cross.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_takes_bytes_over_bandwidth() {
        let net = MigrationNet::symmetric(2, 100.0);
        let est = price_migration(
            &net,
            &[MigrationFlow {
                src_machine: 0,
                dst_machine: 1,
                bytes: 500,
            }],
        );
        assert!((est.makespan_s - 5.0).abs() < 1e-9, "{est:?}");
        assert_eq!(est.cross_machine_bytes, 500);
        assert_eq!(est.cross_flows, 1);
    }

    #[test]
    fn flows_sharing_an_uplink_halve_their_rate() {
        let net = MigrationNet::symmetric(3, 100.0);
        // Both blobs leave machine 0: its uplink is the bottleneck.
        let flows = [
            MigrationFlow {
                src_machine: 0,
                dst_machine: 1,
                bytes: 500,
            },
            MigrationFlow {
                src_machine: 0,
                dst_machine: 2,
                bytes: 500,
            },
        ];
        let est = price_migration(&net, &flows);
        assert!((est.makespan_s - 10.0).abs() < 1e-9, "{est:?}");
        // Disjoint destinations with separate sources would finish in 5 s.
        let spread = [
            flows[0],
            MigrationFlow {
                src_machine: 1,
                dst_machine: 2,
                bytes: 500,
            },
        ];
        let est2 = price_migration(&net, &spread);
        assert!((est2.makespan_s - 5.0).abs() < 1e-9, "{est2:?}");
    }

    #[test]
    fn intra_machine_moves_are_free() {
        let net = MigrationNet::symmetric(2, 100.0);
        let est = price_migration(
            &net,
            &[MigrationFlow {
                src_machine: 1,
                dst_machine: 1,
                bytes: 4096,
            }],
        );
        assert_eq!(est.makespan_s, 0.0);
        assert_eq!(est.cross_machine_bytes, 0);
        assert_eq!(est.intra_machine_bytes, 4096);
        assert_eq!(est.cross_flows, 0);
    }

    #[test]
    fn asymmetric_links_bound_by_the_slow_side() {
        let net = MigrationNet {
            machines: 2,
            uplink_bps: 100.0,
            downlink_bps: 25.0,
        };
        let est = price_migration(
            &net,
            &[MigrationFlow {
                src_machine: 0,
                dst_machine: 1,
                bytes: 100,
            }],
        );
        assert!((est.makespan_s - 4.0).abs() < 1e-9, "{est:?}");
    }
}
