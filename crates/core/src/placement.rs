//! Elastic expert placement: the versioned expert→rank table.
//!
//! The static layout (`owner_of_in(b, e) = e / experts_per_worker`) is
//! just epoch 0 of a [`Placement`]: a per-block `expert → rank` table
//! plus a liveness mask, bumped to a new epoch whenever experts move —
//! either because a rank died permanently and its experts were drained
//! onto survivors ([`Placement::drain`]), or because hot experts were
//! swapped off an overloaded rank ([`Placement::rebalance`]). The table
//! is part of the iteration-plan IR (digest-stable: a plan without a
//! placement hashes exactly as before) and of v2 checkpoints, so a
//! committed cut self-describes the layout it was taken under and
//! replay can never observe a torn placement.
//!
//! Determinism: both planners are pure functions of their inputs, so
//! every rank (and the coordinator) computes the identical next table
//! from the identical death/skew evidence.

use crate::plan::Fnv64;
use serde::{Deserialize, Serialize};

/// One expert move in a migration plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Move {
    /// Block the expert lives in.
    pub block: usize,
    /// Global expert id within the block.
    pub expert: usize,
    /// Rank losing the expert.
    pub from: usize,
    /// Rank gaining the expert.
    pub to: usize,
}

/// Versioned expert→rank table plus rank liveness — the elastic view of
/// expert ownership shared by both numerical engines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Epoch counter: bumped by every committed migration, so two tables
    /// with the same epoch are guaranteed identical for a given run.
    pub epoch: u64,
    /// `owners[block][expert]` = owning rank.
    pub owners: Vec<Vec<u32>>,
    /// `live[rank]`: false once a rank is declared permanently dead.
    pub live: Vec<bool>,
}

impl Placement {
    /// Epoch-0 balanced table matching the static contiguous layout
    /// (`owner = e / (experts / world)`), everyone live.
    pub fn balanced(experts_per_block: &[usize], world: usize) -> Self {
        assert!(world > 0, "placement needs at least one rank");
        let owners = experts_per_block
            .iter()
            .map(|&experts| {
                assert_eq!(experts % world, 0, "experts must divide the world size");
                let per = experts / world;
                (0..experts).map(|e| (e / per) as u32).collect()
            })
            .collect();
        Placement {
            epoch: 0,
            owners,
            live: vec![true; world],
        }
    }

    /// World size the table was built for.
    pub fn world(&self) -> usize {
        self.live.len()
    }

    /// Owning rank of expert `e` in block `b`.
    pub fn owner_of(&self, b: usize, e: usize) -> usize {
        self.owners[b][e] as usize
    }

    /// Whether `rank` is still live.
    pub fn is_live(&self, rank: usize) -> bool {
        self.live[rank]
    }

    /// Number of live ranks.
    pub fn live_count(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    /// Global expert ids of block `b` owned by `rank`, ascending. The
    /// position of an expert in this list is its local shard index.
    pub fn owned_in(&self, b: usize, rank: usize) -> Vec<usize> {
        self.owners[b]
            .iter()
            .enumerate()
            .filter(|&(_, &o)| o as usize == rank)
            .map(|(e, _)| e)
            .collect()
    }

    /// Local shard index of expert `e` in block `b` on its owner: the
    /// number of lower-id experts the owner holds in the block.
    pub fn local_index(&self, b: usize, e: usize) -> usize {
        let owner = self.owners[b][e];
        self.owners[b][..e].iter().filter(|&&o| o == owner).count()
    }

    /// Live local ranks of `machine`, ascending.
    pub fn live_locals(&self, machine: usize, gpus: usize) -> Vec<usize> {
        (machine * gpus..(machine + 1) * gpus)
            .filter(|&r| self.live[r])
            .collect()
    }

    /// The live local rank designated to fetch external expert `e` for
    /// `machine` (and to aggregate its gradient pre-reduction):
    /// round-robin over the machine's *live* workers. With everyone live
    /// this equals the static `machine·gpus + e mod gpus`.
    pub fn designated_local(&self, machine: usize, e: usize, gpus: usize) -> usize {
        let locals = self.live_locals(machine, gpus);
        assert!(
            !locals.is_empty(),
            "machine {machine} has no live workers left"
        );
        locals[e % locals.len()]
    }

    /// Whether this is the default table: epoch 0, balanced, all live.
    /// Checkpoints omit the placement section for the default table, so
    /// pre-elastic checkpoint bytes are reproduced exactly.
    pub fn is_default(&self) -> bool {
        self.epoch == 0 && self.live.iter().all(|&l| l)
    }

    /// Fold the table into a running FNV-1a digest (the plan digest).
    pub fn fold(&self, h: &mut Fnv64) {
        h.word(self.epoch);
        h.word(self.owners.len() as u64);
        for block in &self.owners {
            h.word(block.len() as u64);
            for &o in block {
                h.word(o as u64);
            }
        }
        for &l in &self.live {
            h.byte(l as u8);
        }
    }

    /// Standalone digest of the table.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        self.fold(&mut h);
        h.finish()
    }

    /// Structural validity: table dimensions consistent, every expert
    /// owned by a live in-range rank.
    pub fn assert_valid(&self) {
        let world = self.world();
        assert!(self.live_count() > 0, "no live ranks");
        for (b, block) in self.owners.iter().enumerate() {
            for (e, &o) in block.iter().enumerate() {
                assert!(
                    (o as usize) < world && self.live[o as usize],
                    "block {b} expert {e} owned by dead or out-of-range rank {o}"
                );
            }
        }
    }

    /// Declare `dead` permanently lost and re-apportion its experts
    /// across the survivors: orphans ascending by `(block, expert)`,
    /// each to the live rank currently holding the fewest experts of
    /// that block (ties to the lowest rank). Bumps the epoch.
    pub fn drain(&self, dead: usize) -> Placement {
        assert!(self.live[dead], "rank {dead} is already dead");
        let mut next = self.clone();
        next.live[dead] = false;
        assert!(next.live_count() > 0, "cannot drain the last live rank");
        next.epoch = self.epoch + 1;
        for b in 0..next.owners.len() {
            let mut counts: Vec<usize> = (0..next.world())
                .map(|r| next.owners[b].iter().filter(|&&o| o as usize == r).count())
                .collect();
            for e in 0..next.owners[b].len() {
                if next.owners[b][e] as usize != dead {
                    continue;
                }
                let heir = (0..next.world())
                    .filter(|&r| next.live[r])
                    .min_by_key(|&r| (counts[r], r))
                    .expect("at least one live rank");
                next.owners[b][e] = heir as u32;
                counts[dead] -= 1;
                counts[heir] += 1;
            }
        }
        next.assert_valid();
        next
    }

    /// Greedy skew rebalance: up to `max_moves` times, move one expert
    /// from the most-loaded live rank to the least-loaded live rank,
    /// picking the expert whose load best halves the max−min gap (a
    /// scorching expert is therefore *isolated* — its lighter shard
    /// mates move away — rather than bounced between ranks), and
    /// stopping as soon as no move would shrink the gap. `loads[b][e]`
    /// is the (deterministic) per-expert load. Returns the new table
    /// (epoch bumped once if anything moved) and the moves.
    pub fn rebalance(&self, loads: &[Vec<f64>], max_moves: usize) -> (Placement, Vec<Move>) {
        assert_eq!(loads.len(), self.owners.len(), "one load row per block");
        let mut next = self.clone();
        let mut moves = Vec::new();
        for _ in 0..max_moves {
            let rank_load = |p: &Placement, r: usize| -> f64 {
                p.owners
                    .iter()
                    .zip(loads)
                    .flat_map(|(block, row)| {
                        block
                            .iter()
                            .zip(row)
                            .filter(move |(&o, _)| o as usize == r)
                            .map(|(_, &l)| l)
                    })
                    .sum()
            };
            let live: Vec<usize> = (0..next.world()).filter(|&r| next.live[r]).collect();
            let hot = *live
                .iter()
                .max_by(|&&a, &&b| {
                    rank_load(&next, a)
                        .partial_cmp(&rank_load(&next, b))
                        .unwrap()
                        .then(b.cmp(&a)) // ties to the lowest rank
                })
                .expect("live ranks");
            let cold = *live
                .iter()
                .min_by(|&&a, &&b| {
                    rank_load(&next, a)
                        .partial_cmp(&rank_load(&next, b))
                        .unwrap()
                        .then(a.cmp(&b))
                })
                .expect("live ranks");
            if hot == cold {
                break;
            }
            let gap = rank_load(&next, hot) - rank_load(&next, cold);
            // The expert on the hot rank whose transfer best halves the
            // gap — the post-move gap is |gap − 2·load|, so the ideal
            // shard carries half the gap. A rank never gives up its last
            // expert in a block (every rank must keep a shard to stay a
            // gradient owner of something it serves).
            let candidate = next
                .owners
                .iter()
                .enumerate()
                .flat_map(|(b, block)| {
                    let owned = block.iter().filter(|&&o| o as usize == hot).count();
                    block
                        .iter()
                        .enumerate()
                        .filter(move |(_, &o)| o as usize == hot && owned > 1)
                        .map(move |(e, _)| (b, e))
                })
                .min_by(|&(b1, e1), &(b2, e2)| {
                    (gap - 2.0 * loads[b1][e1])
                        .abs()
                        .partial_cmp(&(gap - 2.0 * loads[b2][e2]).abs())
                        .unwrap()
                        .then((b1, e1).cmp(&(b2, e2))) // ties to lowest (b, e)
                });
            let Some((b, e)) = candidate else { break };
            if (gap - 2.0 * loads[b][e]).abs() >= gap {
                break;
            }
            next.owners[b][e] = cold as u32;
            moves.push(Move {
                block: b,
                expert: e,
                from: hot,
                to: cold,
            });
        }
        if !moves.is_empty() {
            next.epoch = self.epoch + 1;
        }
        next.assert_valid();
        (next, moves)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_matches_static_layout() {
        let p = Placement::balanced(&[8, 4], 4);
        assert_eq!(p.epoch, 0);
        assert!(p.is_default());
        for e in 0..8 {
            assert_eq!(p.owner_of(0, e), e / 2, "block 0 expert {e}");
        }
        for e in 0..4 {
            assert_eq!(p.owner_of(1, e), e, "block 1 expert {e}");
        }
        assert_eq!(p.owned_in(0, 2), vec![4, 5]);
        assert_eq!(p.local_index(0, 5), 1);
        assert_eq!(p.designated_local(1, 5, 2), 3);
        p.assert_valid();
    }

    #[test]
    fn drain_reassigns_every_orphan_to_live_ranks() {
        let p = Placement::balanced(&[8], 4);
        let d = p.drain(1);
        assert_eq!(d.epoch, 1);
        assert!(!d.is_live(1));
        assert!(!d.is_default());
        d.assert_valid();
        // Orphans 2 and 3 land on the two least-loaded survivors.
        assert!(d.owned_in(0, 1).is_empty());
        let total: usize = (0..4).map(|r| d.owned_in(0, r).len()).sum();
        assert_eq!(total, 8);
        // Deterministic: same drain twice gives the same table.
        assert_eq!(p.drain(1), d);
    }

    #[test]
    fn drain_keeps_designated_locals_live() {
        let p = Placement::balanced(&[8], 4).drain(2);
        // Machine 1 (ranks 2,3) has only rank 3 live: every designation
        // for machine 1 must be rank 3.
        for e in 0..8 {
            assert_eq!(p.designated_local(1, e, 2), 3);
        }
    }

    #[test]
    fn rebalance_relieves_the_hot_rank() {
        let p = Placement::balanced(&[8], 4);
        // Rank 0 owns experts 0 and 1; make expert 0 scorching. The
        // best greedy move isolates it: its lighter shard mate (expert
        // 1) leaves for the coldest rank, rather than the scorching
        // expert bouncing onto — and overloading — another rank.
        let mut loads = vec![vec![1.0; 8]];
        loads[0][0] = 10.0;
        let (next, moves) = p.rebalance(&loads, 4);
        assert!(!moves.is_empty());
        assert_eq!(moves[0].expert, 1);
        assert_eq!(moves[0].from, 0);
        assert_eq!(next.owner_of(0, 0), 0, "scorching expert stays put");
        assert_ne!(next.owner_of(0, 1), 0);
        assert_eq!(next.epoch, 1);
        next.assert_valid();
        let load_of = |pl: &Placement, r: usize| -> f64 {
            pl.owned_in(0, r).iter().map(|&e| loads[0][e]).sum()
        };
        let max_before = (0..4).map(|r| load_of(&p, r)).fold(0.0, f64::max);
        let max_after = (0..4).map(|r| load_of(&next, r)).fold(0.0, f64::max);
        assert!(max_after < max_before, "{max_after} < {max_before}");
        // Deterministic.
        assert_eq!(p.rebalance(&loads, 4), (next, moves));
    }

    #[test]
    fn rebalance_is_a_no_op_when_balanced() {
        let p = Placement::balanced(&[8], 4);
        let loads = vec![vec![1.0; 8]];
        let (next, moves) = p.rebalance(&loads, 4);
        assert!(moves.is_empty());
        assert_eq!(next, p);
    }

    #[test]
    fn digest_tracks_content() {
        let p = Placement::balanced(&[8], 4);
        let d = p.drain(3);
        assert_ne!(p.digest(), d.digest());
        assert_eq!(p.digest(), Placement::balanced(&[8], 4).digest());
    }
}
