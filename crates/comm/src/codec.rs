//! Length-prefixed framing over byte streams.
//!
//! Every frame is a 4-byte big-endian length followed by that many bytes
//! of [`crate::message::Message`] encoding. A configurable ceiling guards
//! against corrupt headers allocating unbounded memory.

use crate::message::Message;
use crate::transport::CommError;
use bytes::Bytes;
use std::io::{ErrorKind, Read, Write};

/// Default maximum frame size: large enough for any expert in the paper's
/// models (a 768-dim fp16 expert is ~9.4 MB) with generous headroom.
pub const DEFAULT_MAX_FRAME: usize = 256 * 1024 * 1024;

/// Write one frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), CommError> {
    let len = u32::try_from(payload.len()).map_err(|_| CommError::FrameTooLarge {
        len: payload.len(),
        max: u32::MAX as usize,
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame. Returns `Ok(None)` on clean EOF at a frame boundary;
/// EOF mid-frame is an error.
pub fn read_frame<R: Read>(r: &mut R, max_frame: usize) -> Result<Option<Vec<u8>>, CommError> {
    let mut header = [0u8; 4];
    match read_exact_or_eof(r, &mut header)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Filled => {}
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > max_frame {
        return Err(CommError::FrameTooLarge {
            len,
            max: max_frame,
        });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == ErrorKind::UnexpectedEof {
            CommError::Disconnected
        } else {
            CommError::Io(e)
        }
    })?;
    Ok(Some(payload))
}

/// Write a [`Message`] as one frame.
pub fn write_message<W: Write>(w: &mut W, msg: &Message) -> Result<(), CommError> {
    write_frame(w, &msg.encode())
}

/// Read one [`Message`]; `Ok(None)` on clean EOF.
pub fn read_message<R: Read>(r: &mut R, max_frame: usize) -> Result<Option<Message>, CommError> {
    match read_frame(r, max_frame)? {
        None => Ok(None),
        Some(payload) => Message::decode(Bytes::from(payload)).map(Some),
    }
}

enum ReadOutcome {
    Filled,
    Eof,
}

/// Fill `buf` completely, distinguishing EOF-before-any-byte (clean) from
/// EOF mid-buffer (dirty).
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<ReadOutcome, CommError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(ReadOutcome::Eof)
                } else {
                    Err(CommError::Disconnected)
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(CommError::Io(e)),
        }
    }
    Ok(ReadOutcome::Filled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[7u8; 1000]).unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap().unwrap(),
            b"hello"
        );
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap().unwrap(),
            b""
        );
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap().unwrap(),
            vec![7u8; 1000]
        );
        assert!(read_frame(&mut cursor, DEFAULT_MAX_FRAME)
            .unwrap()
            .is_none());
    }

    #[test]
    fn message_round_trip_through_stream() {
        let msg = Message::ExpertPayload {
            block: 2,
            expert: 9,
            nonce: 4,
            data: Bytes::from(vec![1, 2, 3]),
        };
        let mut buf = Vec::new();
        write_message(&mut buf, &msg).unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(
            read_message(&mut cursor, DEFAULT_MAX_FRAME)
                .unwrap()
                .unwrap(),
            msg
        );
    }

    #[test]
    fn oversized_frame_rejected_on_read() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0u8; 100]).unwrap();
        let err = read_frame(&mut Cursor::new(buf), 10).unwrap_err();
        assert!(matches!(
            err,
            CommError::FrameTooLarge { len: 100, max: 10 }
        ));
    }

    #[test]
    fn eof_mid_header_is_disconnect() {
        let buf = vec![0u8, 0, 0]; // truncated header
        let err = read_frame(&mut Cursor::new(buf), 100).unwrap_err();
        assert!(matches!(err, CommError::Disconnected));
    }

    #[test]
    fn eof_mid_payload_is_disconnect() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[9u8; 50]).unwrap();
        buf.truncate(20);
        let err = read_frame(&mut Cursor::new(buf), 100).unwrap_err();
        assert!(matches!(err, CommError::Disconnected));
    }
}
