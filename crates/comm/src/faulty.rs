//! Fault-injection transport wrapper: seeded drops, delays, duplicates,
//! partition windows, and cross-peer reordering.
//!
//! Janus's protocols assume *per-pair FIFO* delivery (TCP semantics) but
//! make no assumption about ordering **across** peers, and the matching
//! receiver ([`crate::comm::Comm`]) must tolerate duplicates of
//! idempotent control traffic. [`FaultyTransport`] stresses exactly those
//! properties — and, stacked under
//! [`crate::reliable::ReliableTransport`], it turns the link into an
//! adversarial lossy channel the reliability layer must repair:
//!
//! * **send-side** faults (seeded per endpoint): silently drop a message,
//!   deliver an extra copy, or hold it back and release it a few send
//!   operations later (bounded delay, which reorders the link);
//! * **partition windows**: for a configured pair of ranks, every send
//!   within a window of that link's send-operation count is dropped.
//!   Windows are counted in *operations*, not wall-clock, so retransmits
//!   from a reliability layer deterministically burn through them;
//! * **receive-side** faults: buffered delivery in a seeded, jittered
//!   order that preserves each sender's FIFO but interleaves senders
//!   adversarially, plus occasional duplicate `Barrier` delivery.
//!
//! `Shutdown` and self-sends are exempt from send-side faults: dropping
//! the teardown signal would turn every test into a hang rather than a
//! diagnostic.

use crate::message::Message;
use crate::transport::{CommError, Transport, TransportStats};
use rand_chacha_lite::Lcg;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::time::Duration;

/// A tiny deterministic LCG so this module needs no extra dependencies.
mod rand_chacha_lite {
    /// Linear congruential generator (Numerical Recipes constants).
    pub struct Lcg(pub u64);

    impl Lcg {
        /// Next raw value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }

        /// Uniform value in `0..n`.
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() >> 16) as usize % n.max(1)
        }

        /// Bernoulli draw with probability `p`.
        pub fn chance(&mut self, p: f64) -> bool {
            let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            u < p
        }
    }
}

/// A window during which every send on the link between ranks `a` and
/// `b` (either direction) is dropped. The window is measured in that
/// link's *send-operation count* at each endpoint, so it deterministically
/// opens and closes regardless of timing, and retransmissions advance
/// through it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// One endpoint of the partitioned link.
    pub a: usize,
    /// The other endpoint.
    pub b: usize,
    /// First send-op index (per endpoint, per link) that is dropped.
    pub from_op: u64,
    /// First send-op index past the window (exclusive).
    pub to_op: u64,
}

impl Partition {
    fn covers(&self, x: usize, y: usize, op: u64) -> bool {
        let pair_matches = (self.a == x && self.b == y) || (self.a == y && self.b == x);
        pair_matches && op >= self.from_op && op < self.to_op
    }
}

/// When an injected crash fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashAt {
    /// On the victim's n-th (0-based) application send across this
    /// transport, counted over all links. Counters are per transport
    /// instance, so a supervisor round that rebuilds the mesh restarts
    /// the count.
    SendOp(u64),
    /// At the start of the given absolute training iteration. The
    /// transport cannot see iterations; drivers that can (the
    /// supervisor's worker loop) honour this trigger.
    Iteration(u64),
}

/// An injected rank crash: the victim panics — exactly what a real
/// worker death looks like to the rest of the mesh — at a seeded,
/// deterministic point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// The rank that dies.
    pub rank: usize,
    /// When it dies.
    pub at: CrashAt,
}

/// Seeded fault profile. The zero-probability, no-partition default
/// injects nothing; dial individual faults up per test.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// RNG seed (per endpoint; the rank is mixed in for diversity).
    pub seed: u64,
    /// Probability that a send is silently dropped.
    pub drop: f64,
    /// Probability that a send is delivered twice. Only safe when a
    /// dedup layer (reliability, or idempotent protocol traffic) sits
    /// above this transport.
    pub duplicate: f64,
    /// Probability that a send is held back and released later.
    pub delay: f64,
    /// Upper bound on how many subsequent send operations a delayed
    /// message waits before release (drawn uniformly in `1..=max`).
    pub max_delay_ops: u32,
    /// Probability that a receive is deferred in favour of a later
    /// message from a *different* peer (cross-peer reordering).
    pub reorder: f64,
    /// Probability of delivering an extra copy of a `Barrier` message
    /// (duplicate delivery of idempotent control traffic).
    pub duplicate_barrier: f64,
    /// Links that drop everything during a send-op window.
    pub partitions: Vec<Partition>,
    /// Ranks that die at chosen points ([`CrashAt::SendOp`] fires inside
    /// this transport; [`CrashAt::Iteration`] is honoured by
    /// iteration-aware drivers such as the supervisor).
    pub crashes: Vec<CrashPoint>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0xC0FFEE,
            drop: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            max_delay_ops: 4,
            reorder: 0.0,
            duplicate_barrier: 0.0,
            partitions: Vec::new(),
            crashes: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// The profile the pre-reliability chaos tests used: cross-peer
    /// receive reordering plus duplicated barriers, no loss.
    pub fn reorder_only(seed: u64, reorder: f64, duplicate_barrier: f64) -> Self {
        FaultPlan {
            seed,
            reorder,
            duplicate_barrier,
            ..FaultPlan::default()
        }
    }
}

/// Transport wrapper injecting the faults described by a [`FaultPlan`].
pub struct FaultyTransport<T: Transport> {
    inner: T,
    plan: FaultPlan,
    state: RefCell<FaultState>,
}

struct FaultState {
    rng: Lcg,
    /// Incoming messages pulled from the inner transport but not yet
    /// delivered (receive-side reordering pool).
    held: VecDeque<(usize, Message)>,
    /// Outgoing messages held back by the delay fault, with the number
    /// of further send ops to wait before release.
    delayed: VecDeque<(u32, usize, Message)>,
    /// Per-destination send-operation counters (for partition windows).
    link_ops: Vec<u64>,
    /// Application sends across all links (for [`CrashAt::SendOp`]).
    total_ops: u64,
    stats: TransportStats,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wrap `inner` with the given fault plan.
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        let seed = plan.seed ^ (inner.rank() as u64).wrapping_mul(0x9E3779B97F4A7C15);
        let world = inner.world_size();
        FaultyTransport {
            inner,
            plan,
            state: RefCell::new(FaultState {
                rng: Lcg(seed),
                held: VecDeque::new(),
                delayed: VecDeque::new(),
                link_ops: vec![0; world],
                total_ops: 0,
                stats: TransportStats::default(),
            }),
        }
    }

    /// Pick a held message to deliver, preserving per-sender FIFO: always
    /// the *earliest* held message of the chosen sender.
    fn pop_held(&self, state: &mut FaultState) -> Option<(usize, Message)> {
        if state.held.is_empty() {
            return None;
        }
        // Choose a sender among those with held messages.
        let mut senders: Vec<usize> = state.held.iter().map(|(f, _)| *f).collect();
        senders.sort_unstable();
        senders.dedup();
        let sender = senders[state.rng.below(senders.len())];
        let pos = state
            .held
            .iter()
            .position(|(f, _)| *f == sender)
            .expect("sender has a held message");
        state.held.remove(pos)
    }

    /// Count down delayed sends and release the ones that matured.
    fn tick_delayed(&self, state: &mut FaultState) -> Result<(), CommError> {
        for entry in state.delayed.iter_mut() {
            entry.0 = entry.0.saturating_sub(1);
        }
        while let Some(pos) = state.delayed.iter().position(|(ops, _, _)| *ops == 0) {
            let (_, to, msg) = state.delayed.remove(pos).expect("position is valid");
            self.inner.send(to, msg)?;
        }
        Ok(())
    }

    /// Release every delayed send immediately (used by `flush`).
    fn release_all_delayed(&self, state: &mut FaultState) -> Result<(), CommError> {
        while let Some((_, to, msg)) = state.delayed.pop_front() {
            self.inner.send(to, msg)?;
        }
        Ok(())
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn world_size(&self) -> usize {
        self.inner.world_size()
    }

    fn send(&self, to: usize, msg: Message) -> Result<(), CommError> {
        let mut state = self.state.borrow_mut();
        self.tick_delayed(&mut state)?;

        // Shutdown and self-sends bypass fault injection entirely:
        // dropping teardown turns failures into hangs, and a self-send
        // never crosses a link.
        if to == self.inner.rank() || matches!(msg, Message::Shutdown) {
            return self.inner.send(to, msg);
        }

        let op = state.link_ops[to];
        state.link_ops[to] += 1;
        let total_op = state.total_ops;
        state.total_ops += 1;

        let me = self.inner.rank();
        // Injected crash: die exactly like a real worker death — by
        // panicking. The runtime catches it, marks the rank dead, and
        // peers see `PeerDead`.
        if self
            .plan
            .crashes
            .iter()
            .any(|c| c.rank == me && c.at == CrashAt::SendOp(total_op))
        {
            crate::obs::proto_event(me, "janus_crashes_injected_total", || {
                format!("crash/send_op{total_op}")
            });
            panic!("injected crash: rank {me} at send op {total_op}");
        }
        if self.plan.partitions.iter().any(|p| p.covers(me, to, op)) {
            state.stats.faults_dropped += 1;
            crate::obs::proto_event(me, "janus_faults_dropped_total", || {
                format!("fault_drop/partition/to{to}")
            });
            return Ok(());
        }
        if state.rng.chance(self.plan.drop) {
            state.stats.faults_dropped += 1;
            crate::obs::proto_event(me, "janus_faults_dropped_total", || {
                format!("fault_drop/to{to}")
            });
            return Ok(());
        }
        if state.rng.chance(self.plan.duplicate) {
            state.stats.faults_duplicated += 1;
            crate::obs::proto_event(me, "janus_faults_duplicated_total", || {
                format!("fault_dup/to{to}")
            });
            self.inner.send(to, msg.clone())?;
            return self.inner.send(to, msg);
        }
        if state.rng.chance(self.plan.delay) {
            let wait = 1 + state.rng.below(self.plan.max_delay_ops.max(1) as usize) as u32;
            state.stats.faults_delayed += 1;
            crate::obs::proto_event(me, "janus_faults_delayed_total", || {
                format!("fault_delay/to{to}/ops{wait}")
            });
            state.delayed.push_back((wait, to, msg));
            return Ok(());
        }
        self.inner.send(to, msg)
    }

    fn recv(&self) -> Result<(usize, Message), CommError> {
        let mut state = self.state.borrow_mut();
        self.tick_delayed(&mut state)?;
        // Pull everything immediately available so reordering has choices.
        while let Some(m) = self.inner.try_recv()? {
            state.held.push_back(m);
        }
        // Maybe hold out for one more message before delivering.
        if state.held.is_empty() || state.rng.chance(self.plan.reorder) {
            match self.inner.try_recv()? {
                Some(m) => state.held.push_back(m),
                None if state.held.is_empty() => {
                    // Nothing buffered at all: block on the inner
                    // transport — but if sends are pending delayed
                    // release, they may be what the peer is waiting on,
                    // so release them rather than deadlocking.
                    self.release_all_delayed(&mut state)?;
                    let m = self.inner.recv()?;
                    state.held.push_back(m);
                }
                None => {}
            }
        }
        let (from, msg) = self.pop_held(&mut state).expect("held is non-empty here");
        // Duplicate idempotent barrier traffic occasionally.
        if matches!(msg, Message::Barrier { .. }) && state.rng.chance(self.plan.duplicate_barrier) {
            state.held.push_back((from, msg.clone()));
        }
        Ok((from, msg))
    }

    fn try_recv(&self) -> Result<Option<(usize, Message)>, CommError> {
        let mut state = self.state.borrow_mut();
        self.tick_delayed(&mut state)?;
        while let Some(m) = self.inner.try_recv()? {
            state.held.push_back(m);
        }
        Ok(self.pop_held(&mut state))
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<(usize, Message)>, CommError> {
        {
            let mut state = self.state.borrow_mut();
            self.tick_delayed(&mut state)?;
            while let Some(m) = self.inner.try_recv()? {
                state.held.push_back(m);
            }
            if let Some(m) = self.pop_held(&mut state) {
                return Ok(Some(m));
            }
            // Nothing to deliver: anything we are still delaying may be
            // what the peer needs to make progress within the timeout.
            self.release_all_delayed(&mut state)?;
        }
        match self.inner.recv_timeout(timeout)? {
            Some(m) => Ok(Some(m)),
            None => Ok(None),
        }
    }

    fn stats(&self) -> TransportStats {
        let mut s = self.state.borrow().stats;
        s.add(&self.inner.stats());
        s
    }

    fn flush(&self) -> Result<(), CommError> {
        let mut state = self.state.borrow_mut();
        self.release_all_delayed(&mut state)?;
        drop(state);
        self.inner.flush()
    }

    fn death_handle(&self) -> crate::liveness::DeathHandle {
        self.inner.death_handle()
    }

    fn acknowledge_dead(&self, rank: usize) {
        self.inner.acknowledge_dead(rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::{all_to_all, barrier};
    use crate::local::local_mesh;
    use crate::runtime::run_on;

    fn reorder_mesh(world: usize, seed: u64) -> Vec<FaultyTransport<crate::local::LocalTransport>> {
        local_mesh(world)
            .into_iter()
            .map(|t| FaultyTransport::new(t, FaultPlan::reorder_only(seed, 0.5, 0.0)))
            .collect()
    }

    #[test]
    fn per_sender_fifo_is_preserved() {
        let mut mesh = reorder_mesh(2, 7);
        let b = mesh.pop().unwrap();
        let a = mesh.pop().unwrap();
        for i in 0..50u64 {
            a.send(1, Message::Barrier { epoch: i }).unwrap();
        }
        let mut last = None;
        for _ in 0..50 {
            match b.recv().unwrap() {
                (0, Message::Barrier { epoch }) => {
                    if let Some(prev) = last {
                        assert!(epoch > prev, "FIFO violated: {epoch} after {prev}");
                    }
                    last = Some(epoch);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn collectives_survive_reordering() {
        for seed in [1u64, 2, 3] {
            let out = run_on(reorder_mesh(4, seed), |comm| {
                barrier(&comm, 0).unwrap();
                let me = comm.rank() as u8;
                let r = all_to_all(&comm, 1, vec![vec![me; 3]; 4]).unwrap();
                barrier(&comm, 2).unwrap();
                r
            });
            for (rank, received) in out.iter().enumerate() {
                let _ = rank;
                for (from, chunk) in received.iter().enumerate() {
                    assert_eq!(chunk, &vec![from as u8; 3]);
                }
            }
        }
    }

    #[test]
    fn duplicate_barriers_are_tolerated() {
        let mesh: Vec<_> = local_mesh(3)
            .into_iter()
            .map(|t| FaultyTransport::new(t, FaultPlan::reorder_only(11, 0.4, 0.8)))
            .collect();
        // Distinct epochs keep duplicated markers claimable; the `seen`
        // filter in `barrier` ignores repeats from the same peer.
        run_on(mesh, |comm| {
            for epoch in 0..5 {
                barrier(&comm, epoch).unwrap();
            }
        });
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        let run_once = || {
            run_on(reorder_mesh(3, 42), |comm| {
                let me = comm.rank() as u8;
                all_to_all(&comm, 0, vec![vec![me]; 3]).unwrap()
            })
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn drops_are_counted_and_messages_vanish() {
        let mut mesh = local_mesh(2);
        let b = mesh.pop().unwrap();
        let a = FaultyTransport::new(
            mesh.pop().unwrap(),
            FaultPlan {
                seed: 3,
                drop: 1.0,
                ..FaultPlan::default()
            },
        );
        for i in 0..10u64 {
            a.send(1, Message::Barrier { epoch: i }).unwrap();
        }
        assert_eq!(b.try_recv().unwrap(), None);
        assert_eq!(a.stats().faults_dropped, 10);
    }

    #[test]
    fn duplicates_deliver_two_copies() {
        let mut mesh = local_mesh(2);
        let b = mesh.pop().unwrap();
        let a = FaultyTransport::new(
            mesh.pop().unwrap(),
            FaultPlan {
                seed: 3,
                duplicate: 1.0,
                ..FaultPlan::default()
            },
        );
        a.send(1, Message::Barrier { epoch: 9 }).unwrap();
        assert_eq!(b.recv().unwrap().1, Message::Barrier { epoch: 9 });
        assert_eq!(b.recv().unwrap().1, Message::Barrier { epoch: 9 });
        assert_eq!(a.stats().faults_duplicated, 1);
    }

    #[test]
    fn delayed_sends_release_after_ops_and_on_flush() {
        let mut mesh = local_mesh(2);
        let b = mesh.pop().unwrap();
        let a = FaultyTransport::new(
            mesh.pop().unwrap(),
            FaultPlan {
                seed: 3,
                delay: 1.0,
                max_delay_ops: 1,
                ..FaultPlan::default()
            },
        );
        a.send(1, Message::Barrier { epoch: 0 }).unwrap();
        assert_eq!(b.try_recv().unwrap(), None, "first send is held");
        // The next send op matures the held message (wait = 1).
        a.send(1, Message::Barrier { epoch: 1 }).unwrap();
        assert_eq!(b.recv().unwrap().1, Message::Barrier { epoch: 0 });
        // The second message is itself delayed; flush forces it out.
        a.flush().unwrap();
        assert_eq!(b.recv().unwrap().1, Message::Barrier { epoch: 1 });
        assert_eq!(a.stats().faults_delayed, 2);
    }

    #[test]
    fn partition_window_drops_then_heals() {
        let mut mesh = local_mesh(2);
        let b = mesh.pop().unwrap();
        let a = FaultyTransport::new(
            mesh.pop().unwrap(),
            FaultPlan {
                seed: 3,
                partitions: vec![Partition {
                    a: 0,
                    b: 1,
                    from_op: 1,
                    to_op: 3,
                }],
                ..FaultPlan::default()
            },
        );
        for i in 0..5u64 {
            a.send(1, Message::Barrier { epoch: i }).unwrap();
        }
        // Ops 1 and 2 fell inside the window.
        let got: Vec<_> = std::iter::from_fn(|| b.try_recv().unwrap())
            .map(|(_, m)| m)
            .collect();
        assert_eq!(
            got,
            vec![
                Message::Barrier { epoch: 0 },
                Message::Barrier { epoch: 3 },
                Message::Barrier { epoch: 4 },
            ]
        );
        assert_eq!(a.stats().faults_dropped, 2);
    }

    #[test]
    fn crash_point_fires_on_the_exact_send_op() {
        let mut mesh = local_mesh(2);
        let _b = mesh.pop().unwrap();
        let a = FaultyTransport::new(
            mesh.pop().unwrap(),
            FaultPlan {
                crashes: vec![CrashPoint {
                    rank: 0,
                    at: CrashAt::SendOp(2),
                }],
                ..FaultPlan::default()
            },
        );
        a.send(1, Message::Barrier { epoch: 0 }).unwrap();
        a.send(1, Message::Barrier { epoch: 1 }).unwrap();
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = a.send(1, Message::Barrier { epoch: 2 });
        }));
        let msg = *crashed.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("injected crash"), "{msg}");
        assert!(msg.contains("rank 0"), "{msg}");
        assert!(msg.contains("send op 2"), "{msg}");
    }

    #[test]
    fn crash_points_for_other_ranks_are_inert() {
        let mut mesh = local_mesh(2);
        let b = mesh.pop().unwrap();
        let a = FaultyTransport::new(
            mesh.pop().unwrap(),
            FaultPlan {
                crashes: vec![CrashPoint {
                    rank: 1,
                    at: CrashAt::SendOp(0),
                }],
                ..FaultPlan::default()
            },
        );
        a.send(1, Message::Barrier { epoch: 7 }).unwrap();
        assert_eq!(b.recv().unwrap().1, Message::Barrier { epoch: 7 });
    }

    #[test]
    fn shutdown_and_self_sends_are_exempt() {
        let mesh = local_mesh(2);
        let mut it = mesh.into_iter();
        let a = FaultyTransport::new(
            it.next().unwrap(),
            FaultPlan {
                seed: 3,
                drop: 1.0,
                ..FaultPlan::default()
            },
        );
        let b = it.next().unwrap();
        a.send(1, Message::Shutdown).unwrap();
        assert_eq!(b.recv().unwrap().1, Message::Shutdown);
        a.send(0, Message::Barrier { epoch: 5 }).unwrap();
        assert_eq!(a.recv().unwrap(), (0, Message::Barrier { epoch: 5 }));
        assert_eq!(a.stats().faults_dropped, 0);
    }
}
