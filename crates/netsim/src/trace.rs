//! Simulation results: task timings, link byte counters, memory peaks.

use crate::graph::TaskId;
use janus_obs::drift::SegKey;
use janus_obs::report::{LinkUtil, OverlapReport};
use janus_obs::trace::{chrome_trace, TraceEvent};
use serde::Serialize;

/// Timing record of one executed task.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TaskRecord {
    /// Which task.
    pub id: TaskId,
    /// Label copied from the task spec.
    pub label: String,
    /// Work tag (`compute`, `transfer`, ...).
    pub kind: &'static str,
    /// Time the task became ready (all dependencies finished).
    pub ready: f64,
    /// Time the task actually started (lane/credits granted).
    pub start: f64,
    /// Completion time.
    pub finish: f64,
}

impl TaskRecord {
    /// Time spent queued behind a lane or credit pool.
    pub fn queue_delay(&self) -> f64 {
        self.start - self.ready
    }

    /// Active duration.
    pub fn duration(&self) -> f64 {
        self.finish - self.start
    }
}

/// Complete output of one simulation run.
#[derive(Debug, Clone, Serialize)]
pub struct SimResult {
    /// Completion time of the last task.
    pub makespan: f64,
    /// One record per task, indexed by task id.
    pub records: Vec<TaskRecord>,
    /// Total bytes carried by each link over the run.
    pub link_bytes: Vec<f64>,
    /// Per-link busy time (seconds during which at least one flow used the
    /// link).
    pub link_busy: Vec<f64>,
    /// Memory high-water mark per domain.
    pub mem_peak: Vec<f64>,
    /// Final memory level per domain (non-zero indicates an accounting
    /// leak in the engine that built the graph).
    pub mem_final: Vec<f64>,
}

impl SimResult {
    /// Records whose label starts with `prefix`, in finish-time order.
    pub fn records_with_prefix(&self, prefix: &str) -> Vec<&TaskRecord> {
        let mut v: Vec<&TaskRecord> = self
            .records
            .iter()
            .filter(|r| r.label.starts_with(prefix))
            .collect();
        v.sort_by(|a, b| a.finish.total_cmp(&b.finish));
        v
    }

    /// Latest finish among records whose label starts with `prefix`
    /// (0.0 when none match).
    pub fn finish_of(&self, prefix: &str) -> f64 {
        self.records
            .iter()
            .filter(|r| r.label.starts_with(prefix))
            .map(|r| r.finish)
            .fold(0.0, f64::max)
    }

    /// Sum of bytes over a set of links.
    pub fn bytes_on<I: IntoIterator<Item = usize>>(&self, links: I) -> f64 {
        links.into_iter().map(|l| self.link_bytes[l]).sum()
    }

    /// Mean utilization of a link over the makespan.
    pub fn utilization(&self, link: usize, capacity: f64) -> f64 {
        if self.makespan <= 0.0 || capacity <= 0.0 {
            0.0
        } else {
            self.link_bytes[link] / (capacity * self.makespan)
        }
    }

    /// Convert the task timeline into `janus-obs` trace events, the same
    /// representation the numerical engines record, so simulated and real
    /// runs render identically. The track (`tid`) is derived from the
    /// label's leading component (`w3/…` → track "w3", `a2a/…` → track
    /// "a2a"); simulated transfers map to category `comm` so the overlap
    /// report treats them like real communication. Timestamps are
    /// microseconds; all records share `pid` 0 (one simulated process).
    pub fn to_trace_events(&self) -> Vec<TraceEvent> {
        self.records
            .iter()
            .filter(|r| !r.label.is_empty() && !r.finish.is_nan())
            .map(|r| TraceEvent {
                name: r.label.clone(),
                cat: match r.kind {
                    "transfer" => "comm".to_string(),
                    k => k.to_string(),
                },
                pid: 0,
                tid: r.label.split('/').next().unwrap_or("misc").to_string(),
                ts_us: r.start * 1e6,
                dur_us: (r.finish - r.start).max(0.0) * 1e6,
            })
            .collect()
    }

    /// Export the task timeline as a Chrome trace (the JSON array format
    /// of `chrome://tracing` / Perfetto), via the shared `janus-obs`
    /// exporter.
    pub fn to_chrome_trace(&self) -> String {
        chrome_trace(&self.to_trace_events())
    }

    /// Busy-fraction utilization of every link over the makespan.
    pub fn link_utilization(&self) -> Vec<LinkUtil> {
        self.link_busy
            .iter()
            .zip(self.link_bytes.iter())
            .enumerate()
            .map(|(i, (&busy, &bytes))| LinkUtil {
                link: format!("link{i}"),
                bytes,
                utilization: if self.makespan > 0.0 {
                    (busy / self.makespan).clamp(0.0, 1.0)
                } else {
                    0.0
                },
            })
            .collect()
    }

    /// Overlap / utilization / latency summary for this simulated run,
    /// computed by the same analysis the numerical engines use.
    pub fn overlap_report(&self) -> OverlapReport {
        let mut report = OverlapReport::from_events(&self.to_trace_events());
        report.links = self.link_utilization();
        report
    }

    /// Fold the task timeline into sim-vs-real drift segments: each
    /// record the mapper claims contributes its active duration (µs, the
    /// unit `to_trace_events` exports) to its [`SegKey`]. Label
    /// conventions live with the graph emitters, so the mapper is the
    /// caller's; records the mapper declines (and zero-duration joins)
    /// are skipped. Returns `(key, µs)` sorted by key.
    pub fn drift_segments_with<F>(&self, map: F) -> Vec<(SegKey, f64)>
    where
        F: Fn(&TaskRecord) -> Option<SegKey>,
    {
        let mut acc: std::collections::BTreeMap<SegKey, f64> = std::collections::BTreeMap::new();
        for r in &self.records {
            if r.finish.is_nan() {
                continue;
            }
            let dur_us = r.duration().max(0.0) * 1e6;
            if dur_us <= 0.0 {
                continue;
            }
            if let Some(key) = map(r) {
                *acc.entry(key).or_default() += dur_us;
            }
        }
        acc.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(label: &str, ready: f64, start: f64, finish: f64) -> TaskRecord {
        TaskRecord {
            id: TaskId(0),
            label: label.into(),
            kind: "compute",
            ready,
            start,
            finish,
        }
    }

    #[test]
    fn delays_and_durations() {
        let r = record("x", 1.0, 2.5, 4.0);
        assert!((r.queue_delay() - 1.5).abs() < 1e-12);
        assert!((r.duration() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_tracks() {
        let result = SimResult {
            makespan: 2.0,
            records: vec![
                record("w0/b1/fwd-shared", 0.0, 0.0, 1.0),
                record("a2a/b1/fd/w0-w1", 0.5, 0.5, 1.5),
                TaskRecord {
                    id: TaskId(2),
                    label: String::new(), // unlabeled: skipped
                    kind: "noop",
                    ready: 0.0,
                    start: 0.0,
                    finish: 0.0,
                },
            ],
            link_bytes: vec![],
            link_busy: vec![],
            mem_peak: vec![],
            mem_final: vec![],
        };
        let json = result.to_chrome_trace();
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = parsed.as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0]["tid"], "w0");
        assert_eq!(events[1]["tid"], "a2a");
        assert_eq!(events[0]["dur"], 1e6);
        assert_eq!(events[0]["ph"], "X");
    }

    #[test]
    fn trace_events_map_transfers_to_comm() {
        let result = SimResult {
            makespan: 2.0,
            records: vec![
                record("w0/b1/fwd", 0.0, 0.0, 1.0),
                TaskRecord {
                    id: TaskId(1),
                    label: "a2a/b1/w0-w1".into(),
                    kind: "transfer",
                    ready: 0.5,
                    start: 0.5,
                    finish: 1.5,
                },
            ],
            link_bytes: vec![100.0],
            link_busy: vec![1.0],
            mem_peak: vec![],
            mem_final: vec![],
        };
        let events = result.to_trace_events();
        assert_eq!(events[0].cat, "compute");
        assert_eq!(events[1].cat, "comm");
        assert_eq!(events[1].tid, "a2a");
        let util = result.link_utilization();
        assert_eq!(util.len(), 1);
        assert!((util[0].utilization - 0.5).abs() < 1e-12);
        let report = result.overlap_report();
        assert_eq!(report.links.len(), 1);
        // compute [0,1e6), comm [0.5e6,1.5e6): half the comm is hidden.
        assert!((report.ranks[0].overlap_fraction - 0.5).abs() < 1e-9);
    }

    #[test]
    fn prefix_filters_sort_by_finish() {
        let result = SimResult {
            makespan: 5.0,
            records: vec![
                record("block/2", 0.0, 0.0, 3.0),
                record("block/1", 0.0, 0.0, 2.0),
                record("expert/0", 0.0, 0.0, 1.0),
            ],
            link_bytes: vec![10.0, 0.0],
            link_busy: vec![1.0, 0.0],
            mem_peak: vec![],
            mem_final: vec![],
        };
        let blocks = result.records_with_prefix("block/");
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].label, "block/1");
        assert_eq!(result.finish_of("block/"), 3.0);
        assert_eq!(result.finish_of("missing/"), 0.0);
        assert_eq!(result.bytes_on([0, 1]), 10.0);
        assert!((result.utilization(0, 2.0) - 1.0).abs() < 1e-12);
        assert_eq!(result.utilization(0, 0.0), 0.0);
    }

    #[test]
    fn drift_segments_aggregate_by_key_and_skip_declined() {
        let result = SimResult {
            makespan: 3.0,
            records: vec![
                record("w0/b0/ep1/fwd", 0.0, 0.0, 1.0),
                record("w0/b0/ep2/fwd", 1.0, 1.0, 3.0),
                record("join", 3.0, 3.0, 3.0), // zero duration: skipped
                record("skipme", 0.0, 0.0, 2.0),
            ],
            link_bytes: vec![],
            link_busy: vec![],
            mem_peak: vec![],
            mem_final: vec![],
        };
        let segs = result.drift_segments_with(|r| {
            if r.label.starts_with("w0/b0/") {
                Some(SegKey::new("r0", 0, "compute"))
            } else {
                None
            }
        });
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].0, SegKey::new("r0", 0, "compute"));
        assert!((segs[0].1 - 3e6).abs() < 1e-3);
    }
}
