//! The Janus Task Queue: per-worker Intra-Node Schedulers and per-machine
//! Inter-Node Schedulers (paper §4).
//!
//! * [`credit`] — the credit-based buffer bounding in-flight experts on a
//!   GPU (§5.1.1).
//! * [`cache`] — the Cache Manager deduplicating cross-node expert pulls
//!   within a machine, with end-of-iteration invalidation (§5.1.2).
//! * [`grads`] — the gradient pre-reduction accumulator of the backward
//!   phase (§5.1.2).
//!
//! These are the runtime components used by the numerical engines in
//! [`crate::exec`]; the simulation engines express the same semantics as
//! task-graph structure (credit pools, deduplicated fetch flows, joined
//! gradient flows).

pub mod cache;
pub mod credit;
pub mod grads;

pub use cache::{CacheManager, CacheStats};
pub use credit::CreditBuffer;
pub use grads::GradAccumulator;
