//! Explicit AVX2 micro-kernels with runtime dispatch.
//!
//! Every kernel here is **bitwise identical** to its scalar counterpart
//! in [`crate::linalg`] / [`crate::matrix`]: SIMD lanes always map to
//! *distinct output elements* (columns of the destination), never to
//! terms of one reduction, so each output element still accumulates its
//! `k` terms in ascending `p` order with exactly one `mul` rounding and
//! one `add` rounding per term. FMA is deliberately **not** used — a
//! fused multiply-add rounds once where the scalar reference rounds
//! twice, which would break the repo's bitwise-determinism invariant.
//!
//! Dispatch is resolved at runtime: [`active`] is true when the CPU
//! reports AVX2 and nothing forces the scalar path. Tests and benches
//! pin the path with [`set_forced`]; users can set `JANUS_SIMD=off`
//! (or `scalar`/`0`) to force the portable kernels, `JANUS_SIMD=avx2`
//! (or `on`/`1`) to insist on SIMD where available. The environment
//! variable is read once.

// The kernel loops index parallel register/row arrays by tile position;
// rewriting them as iterator chains would hide the tile geometry the
// bitwise argument above reasons about.
#![allow(clippy::needless_range_loop)]

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Tri-state runtime override: 0 = auto, 1 = force scalar, 2 = force SIMD.
static FORCED: AtomicU8 = AtomicU8::new(0);
static ENV_CHOICE: OnceLock<Option<bool>> = OnceLock::new();
static DETECTED: OnceLock<bool> = OnceLock::new();

/// Whether this CPU can run the AVX2 kernels at all.
pub fn detected() -> bool {
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

fn env_choice() -> Option<bool> {
    *ENV_CHOICE.get_or_init(|| {
        let v = std::env::var("JANUS_SIMD").ok()?;
        match v.to_ascii_lowercase().as_str() {
            "0" | "off" | "scalar" | "false" | "none" => Some(false),
            "1" | "on" | "avx2" | "true" | "auto" => Some(true),
            _ => None,
        }
    })
}

/// True when the AVX2 kernels will be used for the next kernel call.
///
/// Resolution order: a process-wide [`set_forced`] override, then the
/// `JANUS_SIMD` environment variable, then CPU detection. Requesting
/// SIMD on a CPU without AVX2 degrades to the scalar path (which is
/// bitwise identical anyway).
pub fn active() -> bool {
    match FORCED.load(Ordering::Relaxed) {
        1 => false,
        2 => detected(),
        _ => match env_choice() {
            Some(false) => false,
            _ => detected(),
        },
    }
}

/// Process-wide dispatch override, taking precedence over `JANUS_SIMD`:
/// `Some(false)` forces the portable scalar kernels, `Some(true)` forces
/// SIMD where the CPU supports it, `None` restores auto-detection.
/// Exists so tests and benches can sweep both paths without re-execing.
pub fn set_forced(mode: Option<bool>) {
    let v = match mode {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    FORCED.store(v, Ordering::Relaxed);
}

/// Human-readable name of the path [`active`] resolves to ("avx2" or
/// "scalar"), for bench reports.
pub fn level_name() -> &'static str {
    if active() {
        "avx2"
    } else {
        "scalar"
    }
}

/// The AVX2 kernel family. All functions are `unsafe` because they are
/// compiled with `#[target_feature(enable = "avx2")]`: callers must
/// check [`active`] first. Pointer arithmetic is bounds-correct by the
/// same shape contracts the scalar kernels assert.
#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2 {
    use std::arch::x86_64::*;

    /// Output-tile height, matching the scalar kernels.
    const MR: usize = 4;

    /// Rows `r0..r1` of `C = A·B` (`A: m×k`, `B: k×n` row-major); `out`
    /// holds just those rows. Lanes run across output columns; each
    /// element reduces ascending `p`, one mul + one add per term.
    ///
    /// The 16-column tile is the **outer** loop: one tile's B panel
    /// (`k × 16` floats, 64 KB at k = 1024) stays L2-resident while
    /// every row group streams over it, instead of re-reading all of B
    /// once per row group. Loop order is invisible to the bitwise
    /// contract — it never changes any element's reduction order.
    #[target_feature(enable = "avx2")]
    pub unsafe fn kernel_nn(
        a: &[f32],
        b: &[f32],
        k: usize,
        n: usize,
        r0: usize,
        r1: usize,
        out: &mut [f32],
    ) {
        let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        // Per-column-tile B panel, packed contiguously: the strided rows
        // of B (n floats apart — a fresh page each reduction step once n
        // is a few thousand) become a dense `k × 16` block that stays
        // cache- and TLB-resident across every row group. Packing is
        // pure data movement, so it cannot affect any element's bits.
        let mut panel = vec![0.0f32; if n >= 8 { k * 16 } else { 0 }];
        let pp = panel.as_mut_ptr();
        let mut j = 0usize;
        while j + 16 <= n {
            pack_panel(bp.add(j), k, n, 16, pp);
            for_row_groups(r0, r1, |i, h| {
                let tile_out = op.add((i - r0) * n + j);
                match h {
                    4 => nn_tile16::<4>(ap, pp, k, n, i, tile_out),
                    3 => nn_tile16::<3>(ap, pp, k, n, i, tile_out),
                    2 => nn_tile16::<2>(ap, pp, k, n, i, tile_out),
                    _ => nn_tile16::<1>(ap, pp, k, n, i, tile_out),
                }
            });
            j += 16;
        }
        if j + 8 <= n {
            pack_panel(bp.add(j), k, n, 8, pp);
            for_row_groups(r0, r1, |i, h| {
                let tile_out = op.add((i - r0) * n + j);
                match h {
                    4 => nn_tile8::<4>(ap, pp, k, n, i, tile_out),
                    3 => nn_tile8::<3>(ap, pp, k, n, i, tile_out),
                    2 => nn_tile8::<2>(ap, pp, k, n, i, tile_out),
                    _ => nn_tile8::<1>(ap, pp, k, n, i, tile_out),
                }
            });
            j += 8;
        }
        // Scalar tail columns: same ascending-p reduction per element.
        for c in j..n {
            for i in r0..r1 {
                let ar = ap.add(i * k);
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += *ar.add(p) * *bp.add(p * n + c);
                }
                *op.add((i - r0) * n + c) = acc;
            }
        }
    }

    /// Copy a `k × w` column panel of a `k × n` row-major matrix into a
    /// dense buffer (`w` ≤ 16, row stride `w`). Values are untouched.
    #[target_feature(enable = "avx2")]
    unsafe fn pack_panel(src: *const f32, k: usize, n: usize, w: usize, dst: *mut f32) {
        for p in 0..k {
            std::ptr::copy_nonoverlapping(src.add(p * n), dst.add(p * w), w);
        }
    }

    /// Walk `r0..r1` in `MR`-row groups, calling `f(i, h)` per group.
    #[inline(always)]
    unsafe fn for_row_groups(r0: usize, r1: usize, mut f: impl FnMut(usize, usize)) {
        let mut i = r0;
        while i < r1 {
            let h = MR.min(r1 - i);
            f(i, h);
            i += h;
        }
    }

    /// One `H × 16` output tile: `b` is the packed panel (row stride 16);
    /// `out` points at the tile's first element.
    #[inline(always)]
    unsafe fn nn_tile16<const H: usize>(
        a: *const f32,
        b: *const f32,
        k: usize,
        n: usize,
        i: usize,
        out: *mut f32,
    ) {
        let mut arows = [a; H];
        for (r, ar) in arows.iter_mut().enumerate() {
            *ar = a.add((i + r) * k);
        }
        let mut acc0 = [_mm256_setzero_ps(); H];
        let mut acc1 = [_mm256_setzero_ps(); H];
        let mut bp = b;
        for p in 0..k {
            let b0 = _mm256_loadu_ps(bp);
            let b1 = _mm256_loadu_ps(bp.add(8));
            for r in 0..H {
                let av = _mm256_set1_ps(*arows[r].add(p));
                acc0[r] = _mm256_add_ps(acc0[r], _mm256_mul_ps(av, b0));
                acc1[r] = _mm256_add_ps(acc1[r], _mm256_mul_ps(av, b1));
            }
            bp = bp.add(16);
        }
        for r in 0..H {
            _mm256_storeu_ps(out.add(r * n), acc0[r]);
            _mm256_storeu_ps(out.add(r * n + 8), acc1[r]);
        }
    }

    /// One `H × 8` output tile (column remainder ≥ 8, packed panel).
    #[inline(always)]
    unsafe fn nn_tile8<const H: usize>(
        a: *const f32,
        b: *const f32,
        k: usize,
        n: usize,
        i: usize,
        out: *mut f32,
    ) {
        let mut arows = [a; H];
        for (r, ar) in arows.iter_mut().enumerate() {
            *ar = a.add((i + r) * k);
        }
        let mut acc = [_mm256_setzero_ps(); H];
        let mut bp = b;
        for p in 0..k {
            let bv = _mm256_loadu_ps(bp);
            for r in 0..H {
                let av = _mm256_set1_ps(*arows[r].add(p));
                acc[r] = _mm256_add_ps(acc[r], _mm256_mul_ps(av, bv));
            }
            bp = bp.add(8);
        }
        for r in 0..H {
            _mm256_storeu_ps(out.add(r * n), acc[r]);
        }
    }

    /// Rows `r0..r1` of `C = Aᵀ·B` (`A: k×m`, `B: k×n` row-major). Same
    /// lane layout and j-outer blocking as [`kernel_nn`]; only the `A`
    /// addressing differs (`A[p][i+r]`, stride `m` per reduction step).
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn kernel_tn(
        a: &[f32],
        b: &[f32],
        k: usize,
        m: usize,
        n: usize,
        r0: usize,
        r1: usize,
        out: &mut [f32],
    ) {
        let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        let mut panel = vec![0.0f32; if n >= 8 { k * 16 } else { 0 }];
        let pp = panel.as_mut_ptr();
        let mut j = 0usize;
        while j + 16 <= n {
            pack_panel(bp.add(j), k, n, 16, pp);
            for_row_groups(r0, r1, |i, h| {
                let tile_out = op.add((i - r0) * n + j);
                match h {
                    4 => tn_tile16::<4>(ap, pp, k, m, n, i, tile_out),
                    3 => tn_tile16::<3>(ap, pp, k, m, n, i, tile_out),
                    2 => tn_tile16::<2>(ap, pp, k, m, n, i, tile_out),
                    _ => tn_tile16::<1>(ap, pp, k, m, n, i, tile_out),
                }
            });
            j += 16;
        }
        if j + 8 <= n {
            pack_panel(bp.add(j), k, n, 8, pp);
            for_row_groups(r0, r1, |i, h| {
                let tile_out = op.add((i - r0) * n + j);
                match h {
                    4 => tn_tile8::<4>(ap, pp, k, m, n, i, tile_out),
                    3 => tn_tile8::<3>(ap, pp, k, m, n, i, tile_out),
                    2 => tn_tile8::<2>(ap, pp, k, m, n, i, tile_out),
                    _ => tn_tile8::<1>(ap, pp, k, m, n, i, tile_out),
                }
            });
            j += 8;
        }
        for c in j..n {
            for i in r0..r1 {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += *ap.add(p * m + i) * *bp.add(p * n + c);
                }
                *op.add((i - r0) * n + c) = acc;
            }
        }
    }

    /// One `H × 16` tile of the TN product (packed panel, stride 16).
    #[inline(always)]
    unsafe fn tn_tile16<const H: usize>(
        a: *const f32,
        b: *const f32,
        k: usize,
        m: usize,
        n: usize,
        i: usize,
        out: *mut f32,
    ) {
        let mut acc0 = [_mm256_setzero_ps(); H];
        let mut acc1 = [_mm256_setzero_ps(); H];
        let mut bp = b;
        let mut apt = a.add(i);
        for _ in 0..k {
            let b0 = _mm256_loadu_ps(bp);
            let b1 = _mm256_loadu_ps(bp.add(8));
            for r in 0..H {
                let av = _mm256_set1_ps(*apt.add(r));
                acc0[r] = _mm256_add_ps(acc0[r], _mm256_mul_ps(av, b0));
                acc1[r] = _mm256_add_ps(acc1[r], _mm256_mul_ps(av, b1));
            }
            bp = bp.add(16);
            apt = apt.add(m);
        }
        for r in 0..H {
            _mm256_storeu_ps(out.add(r * n), acc0[r]);
            _mm256_storeu_ps(out.add(r * n + 8), acc1[r]);
        }
    }

    /// One `H × 8` tile of the TN product (column remainder ≥ 8, packed).
    #[inline(always)]
    unsafe fn tn_tile8<const H: usize>(
        a: *const f32,
        b: *const f32,
        k: usize,
        m: usize,
        n: usize,
        i: usize,
        out: *mut f32,
    ) {
        let mut acc = [_mm256_setzero_ps(); H];
        let mut bp = b;
        let mut apt = a.add(i);
        for _ in 0..k {
            let bv = _mm256_loadu_ps(bp);
            for r in 0..H {
                let av = _mm256_set1_ps(*apt.add(r));
                acc[r] = _mm256_add_ps(acc[r], _mm256_mul_ps(av, bv));
            }
            bp = bp.add(8);
            apt = apt.add(m);
        }
        for r in 0..H {
            _mm256_storeu_ps(out.add(r * n), acc[r]);
        }
    }

    /// Rows `r0..r1` of `C = A·Bᵀ` (`A: m×k`, `B: n×k` row-major). Eight
    /// B rows are transposed 8×8 in registers so lanes still map to
    /// output columns and `p` still ascends — no gathers, no reduction
    /// reordering.
    #[target_feature(enable = "avx2")]
    pub unsafe fn kernel_nt(
        a: &[f32],
        b: &[f32],
        k: usize,
        n: usize,
        r0: usize,
        r1: usize,
        out: &mut [f32],
    ) {
        let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        let mut i = r0;
        while i < r1 {
            let h = MR.min(r1 - i);
            let tile_out = op.add((i - r0) * n);
            match h {
                4 => nt_rows::<4>(ap, bp, k, n, i, tile_out),
                3 => nt_rows::<3>(ap, bp, k, n, i, tile_out),
                2 => nt_rows::<2>(ap, bp, k, n, i, tile_out),
                _ => nt_rows::<1>(ap, bp, k, n, i, tile_out),
            }
            i += h;
        }
    }

    #[inline(always)]
    unsafe fn nt_rows<const H: usize>(
        a: *const f32,
        b: *const f32,
        k: usize,
        n: usize,
        i: usize,
        out: *mut f32,
    ) {
        let mut arows = [a; H];
        for (r, ar) in arows.iter_mut().enumerate() {
            *ar = a.add((i + r) * k);
        }
        let mut j = 0usize;
        while j + 8 <= n {
            let mut acc = [_mm256_setzero_ps(); H];
            let mut p = 0usize;
            while p + 8 <= k {
                // Transpose an 8×8 block of B so lane c holds B[j+c][p+pp].
                let blk = transpose8([
                    _mm256_loadu_ps(b.add(j * k + p)),
                    _mm256_loadu_ps(b.add((j + 1) * k + p)),
                    _mm256_loadu_ps(b.add((j + 2) * k + p)),
                    _mm256_loadu_ps(b.add((j + 3) * k + p)),
                    _mm256_loadu_ps(b.add((j + 4) * k + p)),
                    _mm256_loadu_ps(b.add((j + 5) * k + p)),
                    _mm256_loadu_ps(b.add((j + 6) * k + p)),
                    _mm256_loadu_ps(b.add((j + 7) * k + p)),
                ]);
                for (pp, bv) in blk.iter().enumerate() {
                    for r in 0..H {
                        let av = _mm256_set1_ps(*arows[r].add(p + pp));
                        acc[r] = _mm256_add_ps(acc[r], _mm256_mul_ps(av, *bv));
                    }
                }
                p += 8;
            }
            while p < k {
                // k-tail: assemble the 8 B values for this p on the stack.
                let mut lane = [0.0f32; 8];
                for (c, l) in lane.iter_mut().enumerate() {
                    *l = *b.add((j + c) * k + p);
                }
                let bv = _mm256_loadu_ps(lane.as_ptr());
                for r in 0..H {
                    let av = _mm256_set1_ps(*arows[r].add(p));
                    acc[r] = _mm256_add_ps(acc[r], _mm256_mul_ps(av, bv));
                }
                p += 1;
            }
            for r in 0..H {
                _mm256_storeu_ps(out.add(r * n + j), acc[r]);
            }
            j += 8;
        }
        // Column tail: plain dot products, ascending p.
        for c in j..n {
            let bc = b.add(c * k);
            for r in 0..H {
                let ar = arows[r];
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += *ar.add(p) * *bc.add(p);
                }
                *out.add(r * n + c) = acc;
            }
        }
    }

    /// Column sums of a `rows × cols` row-major buffer: lanes are
    /// columns, rows accumulate in ascending order — the scalar order.
    #[target_feature(enable = "avx2")]
    pub unsafe fn col_sums(data: &[f32], rows: usize, cols: usize, sums: &mut [f32]) {
        sums.fill(0.0);
        let (dp, sp) = (data.as_ptr(), sums.as_mut_ptr());
        for r in 0..rows {
            let row = dp.add(r * cols);
            let mut c = 0usize;
            while c + 8 <= cols {
                let s = _mm256_loadu_ps(sp.add(c));
                let v = _mm256_loadu_ps(row.add(c));
                _mm256_storeu_ps(sp.add(c), _mm256_add_ps(s, v));
                c += 8;
            }
            while c < cols {
                *sp.add(c) += *row.add(c);
                c += 1;
            }
        }
    }

    /// `dst (cols × rows) = srcᵀ` via 8×8 in-register blocks (pure data
    /// movement — trivially bitwise).
    #[target_feature(enable = "avx2")]
    pub unsafe fn transpose(src: &[f32], rows: usize, cols: usize, dst: &mut [f32]) {
        let (sp, dp) = (src.as_ptr(), dst.as_mut_ptr());
        let rblocks = rows / 8 * 8;
        let cblocks = cols / 8 * 8;
        let mut r = 0usize;
        while r < rblocks {
            let mut c = 0usize;
            while c < cblocks {
                let blk = transpose8([
                    _mm256_loadu_ps(sp.add(r * cols + c)),
                    _mm256_loadu_ps(sp.add((r + 1) * cols + c)),
                    _mm256_loadu_ps(sp.add((r + 2) * cols + c)),
                    _mm256_loadu_ps(sp.add((r + 3) * cols + c)),
                    _mm256_loadu_ps(sp.add((r + 4) * cols + c)),
                    _mm256_loadu_ps(sp.add((r + 5) * cols + c)),
                    _mm256_loadu_ps(sp.add((r + 6) * cols + c)),
                    _mm256_loadu_ps(sp.add((r + 7) * cols + c)),
                ]);
                for (cc, row) in blk.iter().enumerate() {
                    _mm256_storeu_ps(dp.add((c + cc) * rows + r), *row);
                }
                c += 8;
            }
            for c in cblocks..cols {
                for rr in 0..8 {
                    *dp.add(c * rows + r + rr) = *sp.add((r + rr) * cols + c);
                }
            }
            r += 8;
        }
        for r in rblocks..rows {
            for c in 0..cols {
                *dp.add(c * rows + r) = *sp.add(r * cols + c);
            }
        }
    }

    /// Broadcast-add `bias` to every row of a `rows × cols` buffer (the
    /// vectorizable half of the fused bias+GeLU sweep; one add per
    /// element, same as scalar).
    #[target_feature(enable = "avx2")]
    pub unsafe fn add_bias_rows(data: &mut [f32], rows: usize, cols: usize, bias: &[f32]) {
        let (dp, bp) = (data.as_mut_ptr(), bias.as_ptr());
        for r in 0..rows {
            let row = dp.add(r * cols);
            let mut c = 0usize;
            while c + 8 <= cols {
                let v = _mm256_loadu_ps(row.add(c));
                let b = _mm256_loadu_ps(bp.add(c));
                _mm256_storeu_ps(row.add(c), _mm256_add_ps(v, b));
                c += 8;
            }
            while c < cols {
                *row.add(c) += *bp.add(c);
                c += 1;
            }
        }
    }

    /// 8×8 f32 transpose in registers (unpack / shuffle / permute).
    #[inline(always)]
    unsafe fn transpose8(r: [__m256; 8]) -> [__m256; 8] {
        let t0 = _mm256_unpacklo_ps(r[0], r[1]);
        let t1 = _mm256_unpackhi_ps(r[0], r[1]);
        let t2 = _mm256_unpacklo_ps(r[2], r[3]);
        let t3 = _mm256_unpackhi_ps(r[2], r[3]);
        let t4 = _mm256_unpacklo_ps(r[4], r[5]);
        let t5 = _mm256_unpackhi_ps(r[4], r[5]);
        let t6 = _mm256_unpacklo_ps(r[6], r[7]);
        let t7 = _mm256_unpackhi_ps(r[6], r[7]);
        let s0 = _mm256_shuffle_ps::<0x44>(t0, t2);
        let s1 = _mm256_shuffle_ps::<0xEE>(t0, t2);
        let s2 = _mm256_shuffle_ps::<0x44>(t1, t3);
        let s3 = _mm256_shuffle_ps::<0xEE>(t1, t3);
        let s4 = _mm256_shuffle_ps::<0x44>(t4, t6);
        let s5 = _mm256_shuffle_ps::<0xEE>(t4, t6);
        let s6 = _mm256_shuffle_ps::<0x44>(t5, t7);
        let s7 = _mm256_shuffle_ps::<0xEE>(t5, t7);
        [
            _mm256_permute2f128_ps::<0x20>(s0, s4),
            _mm256_permute2f128_ps::<0x20>(s1, s5),
            _mm256_permute2f128_ps::<0x20>(s2, s6),
            _mm256_permute2f128_ps::<0x20>(s3, s7),
            _mm256_permute2f128_ps::<0x31>(s0, s4),
            _mm256_permute2f128_ps::<0x31>(s1, s5),
            _mm256_permute2f128_ps::<0x31>(s2, s6),
            _mm256_permute2f128_ps::<0x31>(s3, s7),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forced_override_wins_over_detection() {
        set_forced(Some(false));
        assert!(!active());
        set_forced(Some(true));
        assert_eq!(active(), detected());
        set_forced(None);
        // Auto: whatever the CPU/env says; just must not panic.
        let _ = active();
        let _ = level_name();
    }
}
