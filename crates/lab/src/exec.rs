//! Wave-based DAG executor with manifest emission and verification.

use crate::dag::{Dag, TaskCtx, TaskSpec};
use crate::manifest::{canonical_digest, Diagnostics, FileEntry, Manifest};
use janus_tensor::pool;
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Instant;

/// Outcome of executing a single task: its manifest plus elapsed
/// milliseconds on success, or a failure description.
type TaskResult = Result<(Manifest, u64), String>;

/// Tool/tree identity stamped into every manifest.
#[derive(Debug, Clone)]
pub struct LabEnv {
    /// `git describe --always --dirty`.
    pub git_describe: String,
    /// `rustc -V`.
    pub rustc: String,
    /// Workspace crate version.
    pub janus_version: String,
}

impl LabEnv {
    /// Probe the environment (subprocesses; falls back to `unknown`
    /// per field when a tool is unavailable).
    pub fn detect() -> Self {
        LabEnv {
            git_describe: probe("git", &["describe", "--always", "--dirty"]),
            rustc: probe("rustc", &["-V"]),
            janus_version: env!("CARGO_PKG_VERSION").to_string(),
        }
    }

    /// All-`unknown` identity — for tests, where spawning subprocesses
    /// would make manifests depend on the test environment.
    pub fn unknown() -> Self {
        LabEnv {
            git_describe: "unknown".to_string(),
            rustc: "unknown".to_string(),
            janus_version: env!("CARGO_PKG_VERSION").to_string(),
        }
    }
}

fn probe(cmd: &str, args: &[&str]) -> String {
    Command::new(cmd)
        .args(args)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// How one task ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskStatus {
    /// Ran (or verified) successfully.
    Ok,
    /// The run closure errored or panicked, or verification mismatched.
    Failed,
    /// Not run: a dependency failed, or (in verify) every output is
    /// volatile so there is nothing deterministic to check.
    Skipped,
}

/// Per-task result row of a lab run.
#[derive(Debug, Clone)]
pub struct TaskOutcome {
    /// Task name.
    pub name: String,
    /// How it ended.
    pub status: TaskStatus,
    /// Failure message / skip reason; empty on success.
    pub detail: String,
    /// Wall time of the run closure (0 for skipped tasks).
    pub elapsed_ms: u64,
}

/// Result of [`Executor::run`] / [`Executor::verify`].
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// One row per selected task, in completion order.
    pub outcomes: Vec<TaskOutcome>,
    /// Total wall time.
    pub elapsed_ms: u64,
}

impl RunSummary {
    /// True when no task failed (skips are not failures).
    pub fn ok(&self) -> bool {
        self.outcomes.iter().all(|o| o.status != TaskStatus::Failed)
    }

    /// Count of outcomes with the given status.
    pub fn count(&self, status: TaskStatus) -> usize {
        self.outcomes.iter().filter(|o| o.status == status).count()
    }
}

/// Runs a [`Dag`] selection: schedules ready non-exclusive tasks in
/// parallel on the `janus-tensor` pool (bounded by `jobs`), exclusive
/// tasks alone, and writes `manifest.json` + `diagnostics.json` next to
/// each task's artifacts under `root`.
pub struct Executor {
    /// Artifact root; each task owns `root/<task>/`.
    pub root: PathBuf,
    /// Max concurrently running tasks.
    pub jobs: usize,
    /// Lab seed (scheduling order + manifest field).
    pub seed: u64,
    /// Identity stamped into manifests.
    pub env: LabEnv,
    /// Print per-task status lines.
    pub quiet: bool,
}

impl Executor {
    /// Executor writing under `root`.
    pub fn new(root: impl Into<PathBuf>, jobs: usize, seed: u64, env: LabEnv) -> Self {
        Executor {
            root: root.into(),
            jobs: jobs.max(1),
            seed,
            env,
            quiet: false,
        }
    }

    /// Suppress per-task status lines.
    pub fn quiet(mut self) -> Self {
        self.quiet = true;
        self
    }

    /// Run the selected tasks in dependency order. Independent
    /// non-exclusive tasks of a wave run concurrently; exclusive tasks
    /// run alone. A task whose dependency failed is skipped.
    pub fn run(&self, dag: &Dag, selected: &BTreeSet<usize>) -> RunSummary {
        let t0 = Instant::now();
        let order: Vec<usize> = dag
            .topo_order(self.seed)
            .into_iter()
            .filter(|i| selected.contains(i))
            .collect();
        let mut done: BTreeMap<String, Manifest> = BTreeMap::new();
        let mut unrunnable: BTreeSet<String> = BTreeSet::new();
        let mut outcomes = Vec::with_capacity(order.len());
        let mut pending: Vec<usize> = order;

        while !pending.is_empty() {
            // A task is ready when every dependency has been resolved
            // (produced a manifest, failed, or sits outside the selection).
            let resolved = |name: &String| {
                done.contains_key(name)
                    || unrunnable.contains(name)
                    || dag.find(name).is_none_or(|i| !pending.contains(&i))
            };
            let (ready, rest): (Vec<usize>, Vec<usize>) = pending
                .iter()
                .partition(|&&i| dag.tasks()[i].deps.iter().all(&resolved));
            assert!(!ready.is_empty(), "topo order guarantees progress");
            pending = rest;

            let mut wave: Vec<usize> = Vec::new();
            let mut exclusive: Vec<usize> = Vec::new();
            for i in ready {
                let spec = &dag.tasks()[i];
                if let Some(dep) = spec.deps.iter().find(|d| unrunnable.contains(*d)) {
                    unrunnable.insert(spec.name.clone());
                    let outcome = TaskOutcome {
                        name: spec.name.clone(),
                        status: TaskStatus::Skipped,
                        detail: format!("dependency `{dep}` did not run"),
                        elapsed_ms: 0,
                    };
                    self.report_line(&outcome);
                    outcomes.push(outcome);
                } else if spec.exclusive {
                    exclusive.push(i);
                } else {
                    wave.push(i);
                }
            }

            // Dependency manifests are cloned per task up front so the
            // parallel closures borrow only immutable state.
            let dep_sets: Vec<Vec<(String, Manifest)>> = wave
                .iter()
                .map(|&i| self.dep_manifests(&dag.tasks()[i], &done))
                .collect();
            let results: Vec<(usize, TaskResult)> = if self.jobs > 1 && wave.len() > 1 {
                pool::run_tasks_bounded(self.jobs, wave.len(), |k| {
                    (wave[k], self.run_one(&dag.tasks()[wave[k]], &dep_sets[k]))
                })
            } else {
                wave.iter()
                    .zip(&dep_sets)
                    .map(|(&i, deps)| (i, self.run_one(&dag.tasks()[i], deps)))
                    .collect()
            };
            for (i, result) in results {
                outcomes.push(self.absorb(dag, i, result, &mut done, &mut unrunnable));
            }
            for i in exclusive {
                let deps = self.dep_manifests(&dag.tasks()[i], &done);
                let result = self.run_one(&dag.tasks()[i], &deps);
                outcomes.push(self.absorb(dag, i, result, &mut done, &mut unrunnable));
            }
        }
        RunSummary {
            outcomes,
            elapsed_ms: t0.elapsed().as_millis() as u64,
        }
    }

    /// Re-run each selected task from its recorded manifest into a
    /// staging directory and compare canonical digests (config, plans,
    /// non-volatile outputs). Tasks whose outputs are all volatile are
    /// skipped — there is nothing deterministic to check.
    pub fn verify(&self, dag: &Dag, selected: &BTreeSet<usize>) -> RunSummary {
        let t0 = Instant::now();
        let order: Vec<usize> = dag
            .topo_order(self.seed)
            .into_iter()
            .filter(|i| selected.contains(i))
            .collect();
        let staging_root = self.root.join(".verify");
        let mut outcomes = Vec::with_capacity(order.len());
        for i in order {
            let spec = &dag.tasks()[i];
            let outcome = self.verify_one(spec, &staging_root);
            self.report_line(&outcome);
            outcomes.push(outcome);
        }
        let _ = std::fs::remove_dir_all(&staging_root);
        RunSummary {
            outcomes,
            elapsed_ms: t0.elapsed().as_millis() as u64,
        }
    }

    fn verify_one(&self, spec: &TaskSpec, staging_root: &Path) -> TaskOutcome {
        let recorded = match Manifest::load(&self.root.join(&spec.name).join("manifest.json")) {
            Ok(m) => m,
            Err(e) => {
                return TaskOutcome {
                    name: spec.name.clone(),
                    status: TaskStatus::Failed,
                    detail: format!("no recorded manifest ({e}); run `repro lab` first"),
                    elapsed_ms: 0,
                }
            }
        };
        if recorded.verified_outputs().next().is_none() {
            return TaskOutcome {
                name: spec.name.clone(),
                status: TaskStatus::Skipped,
                detail: "all outputs volatile; nothing deterministic to verify".to_string(),
                elapsed_ms: 0,
            };
        }
        // Dependencies are read from their *recorded* manifests, so a
        // verify run checks one node at a time against the tree on disk.
        let mut deps = Vec::new();
        for d in &spec.deps {
            match Manifest::load(&self.root.join(d).join("manifest.json")) {
                Ok(m) => deps.push((d.clone(), m)),
                Err(e) => {
                    return TaskOutcome {
                        name: spec.name.clone(),
                        status: TaskStatus::Failed,
                        detail: format!("dependency `{d}` has no manifest ({e})"),
                        elapsed_ms: 0,
                    }
                }
            }
        }
        let t0 = Instant::now();
        let staged = Executor {
            root: staging_root.to_path_buf(),
            jobs: 1,
            seed: recorded.seed,
            env: self.env.clone(),
            quiet: true,
        };
        let result = staged.run_one(spec, &deps);
        let elapsed_ms = t0.elapsed().as_millis() as u64;
        let (status, detail) = match result {
            Err(e) => (TaskStatus::Failed, format!("re-run failed: {e}")),
            Ok((fresh, _)) => match diff_manifests(&recorded, &fresh) {
                None => (TaskStatus::Ok, String::new()),
                Some(diff) => (TaskStatus::Failed, diff),
            },
        };
        TaskOutcome {
            name: spec.name.clone(),
            status,
            detail,
            elapsed_ms,
        }
    }

    fn absorb(
        &self,
        dag: &Dag,
        i: usize,
        result: Result<(Manifest, u64), String>,
        done: &mut BTreeMap<String, Manifest>,
        unrunnable: &mut BTreeSet<String>,
    ) -> TaskOutcome {
        let name = dag.tasks()[i].name.clone();
        let outcome = match result {
            Ok((manifest, elapsed_ms)) => {
                done.insert(name.clone(), manifest);
                TaskOutcome {
                    name,
                    status: TaskStatus::Ok,
                    detail: String::new(),
                    elapsed_ms,
                }
            }
            Err(e) => {
                unrunnable.insert(name.clone());
                TaskOutcome {
                    name,
                    status: TaskStatus::Failed,
                    detail: e,
                    elapsed_ms: 0,
                }
            }
        };
        self.report_line(&outcome);
        outcome
    }

    fn dep_manifests(
        &self,
        spec: &TaskSpec,
        done: &BTreeMap<String, Manifest>,
    ) -> Vec<(String, Manifest)> {
        spec.deps
            .iter()
            .filter_map(|d| done.get(d).map(|m| (d.clone(), m.clone())))
            .collect()
    }

    /// Run one task: empty its artifact directory, invoke the closure
    /// (panics caught), persist artifact files, and write
    /// `manifest.json` + `diagnostics.json`.
    fn run_one(&self, spec: &TaskSpec, deps: &[(String, Manifest)]) -> TaskResult {
        let dir = self.root.join(&spec.name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        let ctx = TaskCtx {
            dir: dir.clone(),
            seed: self.seed,
            deps,
        };
        let t0 = Instant::now();
        let report = catch_unwind(AssertUnwindSafe(|| (spec.run)(&ctx)))
            .map_err(|p| format!("panicked: {}", panic_message(&p)))??;
        let elapsed_ms = t0.elapsed().as_millis() as u64;

        let mut outputs = Vec::with_capacity(report.files.len());
        for f in &report.files {
            let path = dir.join(&f.name);
            let bytes = match &f.bytes {
                Some(b) => {
                    std::fs::write(&path, b)
                        .map_err(|e| format!("write {}: {e}", path.display()))?;
                    b.clone()
                }
                None => std::fs::read(&path)
                    .map_err(|e| format!("task reported {} but did not write it: {e}", f.name))?,
            };
            outputs.push(FileEntry {
                file: f.name.clone(),
                raw_bytes: bytes.len() as u64,
                digest: canonical_digest(&f.name, &bytes, &spec.masked_keys),
                volatile: f.volatile,
            });
        }
        let config_text = serde_json::to_string(&report.config).expect("config renders");
        let manifest = Manifest {
            task: spec.name.clone(),
            seed: self.seed,
            config: report.config.clone(),
            config_digest: canonical_digest("config.json", config_text.as_bytes(), &[]),
            plan_digests: report.plan_digests.clone(),
            git_describe: self.env.git_describe.clone(),
            rustc: self.env.rustc.clone(),
            janus_version: self.env.janus_version.clone(),
            masked_keys: spec.masked_keys.clone(),
            inputs: deps
                .iter()
                .map(|(name, m)| (name.clone(), m.output_digest()))
                .collect(),
            outputs,
        };
        let diagnostics = Diagnostics {
            elapsed_ms,
            jobs: self.jobs as u64,
            pool_threads: pool::threads() as u64,
            counters: janus_obs::global().counter_values(),
        };
        std::fs::write(dir.join("manifest.json"), manifest.to_json())
            .map_err(|e| format!("write manifest: {e}"))?;
        std::fs::write(dir.join("diagnostics.json"), diagnostics.to_json())
            .map_err(|e| format!("write diagnostics: {e}"))?;
        Ok((manifest, elapsed_ms))
    }

    fn report_line(&self, outcome: &TaskOutcome) {
        if self.quiet {
            return;
        }
        let _g = crate::stdout_lock();
        match outcome.status {
            TaskStatus::Ok => {
                println!(
                    "lab: {:<12} ok      {:>6} ms",
                    outcome.name, outcome.elapsed_ms
                )
            }
            TaskStatus::Failed => {
                println!("lab: {:<12} FAILED  {}", outcome.name, outcome.detail)
            }
            TaskStatus::Skipped => {
                println!("lab: {:<12} skipped {}", outcome.name, outcome.detail)
            }
        }
    }
}

/// First difference between a recorded and a freshly produced manifest,
/// or `None` when they verify. Timing never appears here: manifests are
/// deterministic by construction and volatile outputs are excluded.
fn diff_manifests(recorded: &Manifest, fresh: &Manifest) -> Option<String> {
    if recorded.config_digest != fresh.config_digest {
        return Some(format!(
            "config digest changed: recorded {} vs fresh {}",
            recorded.config_digest, fresh.config_digest
        ));
    }
    if recorded.plan_digests != fresh.plan_digests {
        return Some(format!(
            "plan digests changed: recorded {:?} vs fresh {:?}",
            recorded.plan_digests, fresh.plan_digests
        ));
    }
    let fresh_files: BTreeMap<&str, &FileEntry> = fresh
        .verified_outputs()
        .map(|f| (f.file.as_str(), f))
        .collect();
    for f in recorded.verified_outputs() {
        match fresh_files.get(f.file.as_str()) {
            None => return Some(format!("output `{}` no longer produced", f.file)),
            Some(g) if g.digest != f.digest => {
                return Some(format!(
                    "output `{}` canonical digest changed: recorded {} vs fresh {}",
                    f.file, f.digest, g.digest
                ))
            }
            Some(_) => {}
        }
    }
    let recorded_names: BTreeSet<&str> = recorded
        .verified_outputs()
        .map(|f| f.file.as_str())
        .collect();
    if let Some(extra) = fresh_files.keys().find(|k| !recorded_names.contains(*k)) {
        return Some(format!("new unrecorded output `{extra}`"));
    }
    None
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}
