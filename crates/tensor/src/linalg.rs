//! Matrix products, including the transposed variants used by backward
//! passes.
//!
//! All three product shapes run on one register-blocked micro-kernel
//! family: the output is walked in `MR × NR` tiles whose accumulators
//! live in registers for the whole `k` (reduction) extent, so each
//! output element costs one store instead of `k` load/store round trips
//! through the output row. The reduction always streams `p = 0..k` in
//! ascending order with one `acc += a·b` per term — exactly the order
//! the scalar reference uses — so blocked, parallel, and reference
//! kernels agree **bitwise**, not just approximately.
//!
//! Large products are split across the [`crate::pool`] by disjoint
//! output-row ranges; every element is still produced by one thread
//! running the same tile code, keeping results independent of
//! `JANUS_THREADS`.

use crate::matrix::Matrix;
use crate::pool;
use crate::simd;

/// Output-tile height (rows of the destination per micro-kernel step).
const MR: usize = 4;
/// Output-tile width (columns of the destination per micro-kernel step).
const NR: usize = 8;

/// Below this many multiply-adds a product stays on the calling thread:
/// scope spawn/join overhead would dominate the kernel. Measured on the
/// SIMD kernels (see `repro bench`): a 64×512×2048 product (~6.7e7
/// muladds) runs ~0.9 ms single-threaded, so anything under ~2e6
/// muladds (<50 µs) is pure spawn overhead.
const PAR_MIN_MULADDS: usize = 1 << 21;

/// Dispatch one row-range of the NN product to the AVX2 or scalar
/// kernel. Both produce bitwise-identical output (see [`crate::simd`]),
/// so the choice is invisible to everything above.
fn run_nn(a: &[f32], b: &[f32], k: usize, n: usize, r0: usize, r1: usize, out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if simd::active() {
        // SAFETY: `active()` implies AVX2 was detected at runtime.
        unsafe { simd::avx2::kernel_nn(a, b, k, n, r0, r1, out) };
        return;
    }
    kernel_nn(a, b, k, n, r0, r1, out);
}

/// Dispatch one row-range of the TN product (see [`run_nn`]).
#[allow(clippy::too_many_arguments)]
fn run_tn(
    a: &[f32],
    b: &[f32],
    k: usize,
    m: usize,
    n: usize,
    r0: usize,
    r1: usize,
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if simd::active() {
        // SAFETY: `active()` implies AVX2 was detected at runtime.
        unsafe { simd::avx2::kernel_tn(a, b, k, m, n, r0, r1, out) };
        return;
    }
    kernel_tn(a, b, k, m, n, r0, r1, out);
}

/// Dispatch one row-range of the NT product (see [`run_nn`]).
fn run_nt(a: &[f32], b: &[f32], k: usize, n: usize, r0: usize, r1: usize, out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if simd::active() {
        // SAFETY: `active()` implies AVX2 was detected at runtime.
        unsafe { simd::avx2::kernel_nt(a, b, k, n, r0, r1, out) };
        return;
    }
    kernel_nt(a, b, k, n, r0, r1, out);
}

impl Matrix {
    /// `self · other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(other, &mut out);
        out
    }

    /// `self · other`, written into `out` (resized as needed; prior
    /// contents are discarded). Steady-state callers reuse `out`'s
    /// allocation across iterations.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let (m, k, n) = (self.rows(), self.cols(), other.cols());
        out.resize(m, n);
        let (a, b) = (self.data(), other.data());
        if m * k * n >= PAR_MIN_MULADDS {
            pool::par_row_chunks(out.data_mut(), n, |r0, r1, chunk| {
                run_nn(a, b, k, n, r0, r1, chunk);
            });
        } else {
            run_nn(a, b, k, n, 0, m, out.data_mut());
        }
    }

    /// `selfᵀ · other` without materializing the transpose (weight
    /// gradients: `dW = xᵀ · dy`).
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_tn_into(other, &mut out);
        out
    }

    /// `selfᵀ · other`, written into `out` (resized as needed).
    pub fn matmul_tn_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows(),
            other.rows(),
            "matmul_tn shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let (k, m, n) = (self.rows(), self.cols(), other.cols());
        out.resize(m, n);
        let (a, b) = (self.data(), other.data());
        if m * k * n >= PAR_MIN_MULADDS {
            pool::par_row_chunks(out.data_mut(), n, |r0, r1, chunk| {
                run_tn(a, b, k, m, n, r0, r1, chunk);
            });
        } else {
            run_tn(a, b, k, m, n, 0, m, out.data_mut());
        }
    }

    /// `self · otherᵀ` without materializing the transpose (input
    /// gradients: `dx = dy · Wᵀ`).
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_nt_into(other, &mut out);
        out
    }

    /// `self · otherᵀ`, written into `out` (resized as needed).
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_nt shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let (m, k, n) = (self.rows(), self.cols(), other.rows());
        out.resize(m, n);
        let (a, b) = (self.data(), other.data());
        if m * k * n >= PAR_MIN_MULADDS {
            pool::par_row_chunks(out.data_mut(), n, |r0, r1, chunk| {
                run_nt(a, b, k, n, r0, r1, chunk);
            });
        } else {
            run_nt(a, b, k, n, 0, m, out.data_mut());
        }
    }

    /// Column sums (bias gradients).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0f32; self.cols()];
        self.col_sums_into(&mut sums);
        sums
    }

    /// Column sums written into `sums` (overwritten, length must match).
    pub fn col_sums_into(&self, sums: &mut [f32]) {
        assert_eq!(sums.len(), self.cols(), "col_sums_into length mismatch");
        #[cfg(target_arch = "x86_64")]
        if simd::active() {
            // SAFETY: `active()` implies AVX2 was detected at runtime.
            unsafe { simd::avx2::col_sums(self.data(), self.rows(), self.cols(), sums) };
            return;
        }
        sums.fill(0.0);
        for r in 0..self.rows() {
            for (s, v) in sums.iter_mut().zip(self.row(r)) {
                *s += v;
            }
        }
    }
}

/// Scalar reference product, kept as the ground truth the blocked and
/// parallel kernels are tested bitwise against (and as the baseline the
/// compute benchmarks measure speedups from). Plain `ijp` dot products,
/// ascending `p`, one rounding per term — the same reduction order the
/// tiled kernels use.
pub fn matmul_reference(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul shape mismatch: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[(i, p)] * b[(p, j)];
            }
            out[(i, j)] = acc;
        }
    }
    out
}

/// Rows `r0..r1` of `C = A·B` with `A: m×k`, `B: k×n`; `out` holds just
/// those rows. Register-blocked `MR × NR` tiles, `k` streamed whole.
fn kernel_nn(a: &[f32], b: &[f32], k: usize, n: usize, r0: usize, r1: usize, out: &mut [f32]) {
    let mut i = r0;
    while i < r1 {
        let h = MR.min(r1 - i);
        let mut arows: [&[f32]; MR] = [&[]; MR];
        for (r, arow) in arows.iter_mut().enumerate().take(h) {
            *arow = &a[(i + r) * k..(i + r) * k + k];
        }
        let mut j = 0;
        while j < n {
            let w = NR.min(n - j);
            let mut acc = [[0.0f32; NR]; MR];
            if w == NR {
                // Full-width tile: fixed NR-lane inner loop vectorizes.
                for p in 0..k {
                    let brow = &b[p * n + j..p * n + j + NR];
                    for r in 0..h {
                        let av = arows[r][p];
                        for c in 0..NR {
                            acc[r][c] += av * brow[c];
                        }
                    }
                }
            } else {
                for p in 0..k {
                    let brow = &b[p * n + j..p * n + j + w];
                    for r in 0..h {
                        let av = arows[r][p];
                        for (ac, &bv) in acc[r][..w].iter_mut().zip(brow) {
                            *ac += av * bv;
                        }
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate().take(h) {
                let dst = (i - r0 + r) * n + j;
                out[dst..dst + w].copy_from_slice(&accr[..w]);
            }
            j += w;
        }
        i += h;
    }
}

/// Rows `r0..r1` of `C = Aᵀ·B` with `A: k×m`, `B: k×n`. Both operands
/// are read along contiguous rows (`A[p][i..]`, `B[p][j..]`), so the TN
/// shape needs no transpose and no strided loads.
#[allow(clippy::too_many_arguments)]
fn kernel_tn(
    a: &[f32],
    b: &[f32],
    k: usize,
    m: usize,
    n: usize,
    r0: usize,
    r1: usize,
    out: &mut [f32],
) {
    let mut i = r0;
    while i < r1 {
        let h = MR.min(r1 - i);
        let mut j = 0;
        while j < n {
            let w = NR.min(n - j);
            let mut acc = [[0.0f32; NR]; MR];
            if w == NR {
                for p in 0..k {
                    let avals = &a[p * m + i..p * m + i + h];
                    let brow = &b[p * n + j..p * n + j + NR];
                    for (r, &av) in avals.iter().enumerate() {
                        for c in 0..NR {
                            acc[r][c] += av * brow[c];
                        }
                    }
                }
            } else {
                for p in 0..k {
                    let avals = &a[p * m + i..p * m + i + h];
                    let brow = &b[p * n + j..p * n + j + w];
                    for (r, &av) in avals.iter().enumerate() {
                        for (ac, &bv) in acc[r][..w].iter_mut().zip(brow) {
                            *ac += av * bv;
                        }
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate().take(h) {
                let dst = (i - r0 + r) * n + j;
                out[dst..dst + w].copy_from_slice(&accr[..w]);
            }
            j += w;
        }
        i += h;
    }
}

/// Rows `r0..r1` of `C = A·Bᵀ` with `A: m×k`, `B: n×k`: an `MR × NR`
/// block of simultaneous dot products over contiguous rows of both
/// operands.
fn kernel_nt(a: &[f32], b: &[f32], k: usize, n: usize, r0: usize, r1: usize, out: &mut [f32]) {
    let mut i = r0;
    while i < r1 {
        let h = MR.min(r1 - i);
        let mut arows: [&[f32]; MR] = [&[]; MR];
        for (r, arow) in arows.iter_mut().enumerate().take(h) {
            *arow = &a[(i + r) * k..(i + r) * k + k];
        }
        let mut j = 0;
        while j < n {
            let w = NR.min(n - j);
            let mut brows: [&[f32]; NR] = [&[]; NR];
            for (c, brow) in brows.iter_mut().enumerate().take(w) {
                *brow = &b[(j + c) * k..(j + c) * k + k];
            }
            let mut acc = [[0.0f32; NR]; MR];
            for p in 0..k {
                for r in 0..h {
                    let av = arows[r][p];
                    for c in 0..w {
                        acc[r][c] += av * brows[c][p];
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate().take(h) {
                let dst = (i - r0 + r) * n + j;
                out[dst..dst + w].copy_from_slice(&accr[..w]);
            }
            j += w;
        }
        i += h;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_small_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::uniform(3, 5, 1.0, &mut rng);
        assert_eq!(a.matmul(&Matrix::eye(5)), a);
        assert_eq!(Matrix::eye(3).matmul(&a), a);
    }

    #[test]
    fn blocked_matches_reference_bitwise_across_tile_edges() {
        // Shapes straddling MR/NR boundaries: remainder tiles in every
        // dimension must still reduce in the reference order.
        let mut rng = StdRng::seed_from_u64(11);
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 8, 8),
            (5, 9, 17),
            (13, 2, 31),
            (16, 16, 16),
        ] {
            let a = Matrix::uniform(m, k, 1.0, &mut rng);
            let b = Matrix::uniform(k, n, 1.0, &mut rng);
            let blocked = a.matmul(&b);
            let reference = matmul_reference(&a, &b);
            assert_eq!(
                blocked.max_abs_diff(&reference),
                0.0,
                "blocked != reference for {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn into_variants_reuse_and_resize_the_output() {
        let mut rng = StdRng::seed_from_u64(12);
        let a = Matrix::uniform(5, 3, 1.0, &mut rng);
        let b = Matrix::uniform(3, 6, 1.0, &mut rng);
        // Start from a wrong-shaped, dirty buffer: it must be resized and
        // fully overwritten.
        let mut out = Matrix::from_vec(2, 2, vec![f32::NAN; 4]);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        // Second use reuses the allocation with fresh contents.
        let c = Matrix::uniform(5, 4, 1.0, &mut rng);
        let d = Matrix::uniform(4, 6, 1.0, &mut rng);
        c.matmul_into(&d, &mut out);
        assert_eq!(out, c.matmul(&d));
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::uniform(4, 3, 1.0, &mut rng);
        let b = Matrix::uniform(4, 5, 1.0, &mut rng);
        let via_tn = a.matmul_tn(&b);
        let explicit = a.transpose().matmul(&b);
        assert!(via_tn.max_abs_diff(&explicit) < 1e-5);

        let c = Matrix::uniform(6, 3, 1.0, &mut rng);
        let d = Matrix::uniform(2, 3, 1.0, &mut rng);
        let via_nt = c.matmul_nt(&d);
        let explicit = c.matmul(&d.transpose());
        assert!(via_nt.max_abs_diff(&explicit) < 1e-5);
    }

    #[test]
    fn matmul_is_associative_up_to_float_error() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Matrix::uniform(3, 4, 0.5, &mut rng);
        let b = Matrix::uniform(4, 2, 0.5, &mut rng);
        let c = Matrix::uniform(2, 5, 0.5, &mut rng);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        assert!(left.max_abs_diff(&right) < 1e-5);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn col_sums_match_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.col_sums(), vec![4.0, 6.0]);
        let mut buf = vec![9.0f32; 2];
        a.col_sums_into(&mut buf);
        assert_eq!(buf, vec![4.0, 6.0]);
    }
}
