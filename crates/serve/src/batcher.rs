//! Iteration-level continuous batching.
//!
//! The batcher is the serving analogue of vLLM/Orca-style continuous
//! batching collapsed to one MoE layer: requests are admitted the moment
//! they arrive and the engine asks for "the next batch" at every step.
//! Admission is strictly FCFS and a batch closes when adding the next
//! request would exceed the token budget — so no request can be
//! overtaken (per-client FIFO falls out of global FIFO) and every
//! non-empty queue yields a non-empty batch (no starvation). Both
//! properties are property-tested in `tests/proptests.rs` of this crate.

use std::collections::VecDeque;

/// Identity of a request within one serving run: which client sent it
/// and its per-client sequence number. Responses must come back in
/// `seq` order per client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId {
    /// Originating client.
    pub client: usize,
    /// Position in that client's stream.
    pub seq: u64,
}

#[derive(Debug, Clone, Copy)]
struct Queued {
    /// Caller-side handle (index into the workload's request list).
    request: usize,
    id: RequestId,
    tokens: usize,
}

/// FCFS continuous batcher with a per-batch token budget.
#[derive(Debug)]
pub struct Batcher {
    queue: VecDeque<Queued>,
    max_batch_tokens: usize,
    admitted: u64,
    emitted: u64,
}

impl Batcher {
    /// New batcher closing batches at `max_batch_tokens` tokens.
    pub fn new(max_batch_tokens: usize) -> Self {
        assert!(max_batch_tokens > 0, "token budget must be positive");
        Batcher {
            queue: VecDeque::new(),
            max_batch_tokens,
            admitted: 0,
            emitted: 0,
        }
    }

    /// Admit a request of `tokens` tokens. `request` is an opaque handle
    /// returned verbatim by [`Batcher::next_batch`].
    pub fn admit(&mut self, request: usize, id: RequestId, tokens: usize) {
        assert!(tokens > 0, "a request carries at least one token");
        self.queue.push_back(Queued {
            request,
            id,
            tokens,
        });
        self.admitted += 1;
    }

    /// Requests currently waiting.
    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    /// Total requests admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Total requests handed out in batches so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Pop the next batch: the longest FCFS prefix of the queue within
    /// the token budget, but always at least one request when the queue
    /// is non-empty (an oversized request forms a batch of its own, it
    /// is never starved). Returns `(request handle, id)` pairs in
    /// admission order; empty iff the queue is empty.
    pub fn next_batch(&mut self) -> Vec<(usize, RequestId)> {
        let mut batch = Vec::new();
        let mut tokens = 0usize;
        while let Some(&head) = self.queue.front() {
            if !batch.is_empty() && tokens + head.tokens > self.max_batch_tokens {
                break;
            }
            tokens += head.tokens;
            batch.push((head.request, head.id));
            self.queue.pop_front();
            self.emitted += 1;
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(client: usize, seq: u64) -> RequestId {
        RequestId { client, seq }
    }

    #[test]
    fn batches_respect_budget_and_order() {
        let mut b = Batcher::new(8);
        for i in 0..5 {
            b.admit(i, id(i % 2, (i / 2) as u64), 3);
        }
        let b1 = b.next_batch();
        assert_eq!(b1.iter().map(|&(r, _)| r).collect::<Vec<_>>(), vec![0, 1]);
        let b2 = b.next_batch();
        assert_eq!(b2.iter().map(|&(r, _)| r).collect::<Vec<_>>(), vec![2, 3]);
        let b3 = b.next_batch();
        assert_eq!(b3.iter().map(|&(r, _)| r).collect::<Vec<_>>(), vec![4]);
        assert!(b.next_batch().is_empty());
        assert_eq!(b.admitted(), 5);
        assert_eq!(b.emitted(), 5);
    }

    #[test]
    fn oversized_request_is_not_starved() {
        let mut b = Batcher::new(4);
        b.admit(0, id(0, 0), 10);
        b.admit(1, id(0, 1), 1);
        let b1 = b.next_batch();
        assert_eq!(b1.len(), 1, "oversized head forms its own batch");
        assert_eq!(b1[0].0, 0);
        assert_eq!(b.next_batch()[0].0, 1);
    }

    #[test]
    fn continuous_admission_joins_next_batch() {
        let mut b = Batcher::new(100);
        b.admit(0, id(0, 0), 2);
        assert_eq!(b.next_batch().len(), 1);
        // Arrivals between steps join the very next batch.
        b.admit(1, id(1, 0), 2);
        b.admit(2, id(0, 1), 2);
        let batch = b.next_batch();
        assert_eq!(
            batch.iter().map(|&(r, _)| r).collect::<Vec<_>>(),
            vec![1, 2]
        );
    }
}
