//! Fault-injection transport wrapper: seeded cross-peer reordering and
//! duplicate delivery.
//!
//! Janus's protocols assume *per-pair FIFO* delivery (TCP semantics) but
//! make no assumption about ordering **across** peers, and the matching
//! receiver ([`crate::comm::Comm`]) must tolerate duplicates of
//! idempotent control traffic. [`ChaosTransport`] stresses exactly those
//! properties: it buffers incoming messages and releases them in a
//! seeded, jittered order that preserves each sender's FIFO but
//! interleaves senders adversarially, and can duplicate barrier
//! messages. Collectives and the training engines must produce identical
//! results under it (see tests here and in `janus-core`).

use crate::message::Message;
use crate::transport::{CommError, Transport};
use rand_chacha_lite::Lcg;
use std::cell::RefCell;
use std::collections::VecDeque;

/// A tiny deterministic LCG so this module needs no extra dependencies.
mod rand_chacha_lite {
    /// Linear congruential generator (Numerical Recipes constants).
    pub struct Lcg(pub u64);

    impl Lcg {
        /// Next raw value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }

        /// Uniform value in `0..n`.
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() >> 16) as usize % n.max(1)
        }

        /// Bernoulli draw with probability `p`.
        pub fn chance(&mut self, p: f64) -> bool {
            let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            u < p
        }
    }
}

/// Fault configuration.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// RNG seed (per endpoint; mix the rank in for diversity).
    pub seed: u64,
    /// Probability that a receive is deferred in favour of a later
    /// message from a *different* peer (cross-peer reordering).
    pub reorder: f64,
    /// Probability of delivering an extra copy of a `Barrier` message
    /// (duplicate delivery of idempotent control traffic).
    pub duplicate_barrier: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xC0FFEE,
            reorder: 0.3,
            duplicate_barrier: 0.1,
        }
    }
}

/// Transport wrapper injecting cross-peer reordering and duplicates.
pub struct ChaosTransport<T: Transport> {
    inner: T,
    cfg: ChaosConfig,
    state: RefCell<ChaosState>,
}

struct ChaosState {
    rng: Lcg,
    /// Messages pulled from the inner transport but not yet delivered.
    held: VecDeque<(usize, Message)>,
}

impl<T: Transport> ChaosTransport<T> {
    /// Wrap `inner` with the given fault profile.
    pub fn new(inner: T, cfg: ChaosConfig) -> Self {
        let seed = cfg.seed ^ (inner.rank() as u64).wrapping_mul(0x9E3779B97F4A7C15);
        ChaosTransport {
            inner,
            cfg,
            state: RefCell::new(ChaosState {
                rng: Lcg(seed),
                held: VecDeque::new(),
            }),
        }
    }

    /// Pick a held message to deliver, preserving per-sender FIFO: always
    /// the *earliest* held message of the chosen sender.
    fn pop_held(&self, state: &mut ChaosState) -> Option<(usize, Message)> {
        if state.held.is_empty() {
            return None;
        }
        // Choose a sender among those with held messages.
        let mut senders: Vec<usize> = state.held.iter().map(|(f, _)| *f).collect();
        senders.sort_unstable();
        senders.dedup();
        let sender = senders[state.rng.below(senders.len())];
        let pos = state
            .held
            .iter()
            .position(|(f, _)| *f == sender)
            .expect("sender has a held message");
        state.held.remove(pos)
    }
}

impl<T: Transport> Transport for ChaosTransport<T> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn world_size(&self) -> usize {
        self.inner.world_size()
    }

    fn send(&self, to: usize, msg: Message) -> Result<(), CommError> {
        self.inner.send(to, msg)
    }

    fn recv(&self) -> Result<(usize, Message), CommError> {
        let mut state = self.state.borrow_mut();
        // Pull everything immediately available so reordering has choices.
        while let Some(m) = self.inner.try_recv()? {
            state.held.push_back(m);
        }
        // Maybe hold out for one more message before delivering.
        if state.held.is_empty() || state.rng.chance(self.cfg.reorder) {
            match self.inner.try_recv()? {
                Some(m) => state.held.push_back(m),
                None if state.held.is_empty() => {
                    // Nothing buffered at all: block on the inner
                    // transport.
                    let m = self.inner.recv()?;
                    state.held.push_back(m);
                }
                None => {}
            }
        }
        let (from, msg) = self.pop_held(&mut state).expect("held is non-empty here");
        // Duplicate idempotent barrier traffic occasionally.
        if matches!(msg, Message::Barrier { .. }) && state.rng.chance(self.cfg.duplicate_barrier) {
            state.held.push_back((from, msg.clone()));
        }
        Ok((from, msg))
    }

    fn try_recv(&self) -> Result<Option<(usize, Message)>, CommError> {
        let mut state = self.state.borrow_mut();
        while let Some(m) = self.inner.try_recv()? {
            state.held.push_back(m);
        }
        Ok(self.pop_held(&mut state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::{all_to_all, barrier};
    use crate::local::local_mesh;
    use crate::runtime::run_on;

    fn chaos_mesh(world: usize, seed: u64) -> Vec<ChaosTransport<crate::local::LocalTransport>> {
        local_mesh(world)
            .into_iter()
            .map(|t| {
                ChaosTransport::new(
                    t,
                    ChaosConfig {
                        seed,
                        reorder: 0.5,
                        duplicate_barrier: 0.0,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn per_sender_fifo_is_preserved() {
        let mut mesh = chaos_mesh(2, 7);
        let b = mesh.pop().unwrap();
        let a = mesh.pop().unwrap();
        for i in 0..50u64 {
            a.send(1, Message::Barrier { epoch: i }).unwrap();
        }
        let mut last = None;
        for _ in 0..50 {
            match b.recv().unwrap() {
                (0, Message::Barrier { epoch }) => {
                    if let Some(prev) = last {
                        assert!(epoch > prev, "FIFO violated: {epoch} after {prev}");
                    }
                    last = Some(epoch);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn collectives_survive_reordering() {
        for seed in [1u64, 2, 3] {
            let out = run_on(chaos_mesh(4, seed), |comm| {
                barrier(&comm, 0).unwrap();
                let me = comm.rank() as u8;
                let r = all_to_all(&comm, 1, vec![vec![me; 3]; 4]).unwrap();
                barrier(&comm, 2).unwrap();
                r
            });
            for (rank, received) in out.iter().enumerate() {
                let _ = rank;
                for (from, chunk) in received.iter().enumerate() {
                    assert_eq!(chunk, &vec![from as u8; 3]);
                }
            }
        }
    }

    #[test]
    fn duplicate_barriers_are_tolerated() {
        let mesh: Vec<_> = local_mesh(3)
            .into_iter()
            .map(|t| {
                ChaosTransport::new(
                    t,
                    ChaosConfig {
                        seed: 11,
                        reorder: 0.4,
                        duplicate_barrier: 0.8,
                    },
                )
            })
            .collect();
        // Distinct epochs keep duplicated markers claimable; the `seen`
        // filter in `barrier` ignores repeats from the same peer.
        run_on(mesh, |comm| {
            for epoch in 0..5 {
                barrier(&comm, epoch).unwrap();
            }
        });
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        let run_once = || {
            run_on(chaos_mesh(3, 42), |comm| {
                let me = comm.rank() as u8;
                all_to_all(&comm, 0, vec![vec![me]; 3]).unwrap()
            })
        };
        assert_eq!(run_once(), run_once());
    }
}
