//! Run real data-centric MoE training over TCP sockets on localhost —
//! the same protocol the in-process examples use, but with every pull
//! request, expert payload, and pre-reduced gradient crossing a real
//! length-prefixed socket stream.
//!
//! ```text
//! cargo run --release --example tcp_cluster
//! ```

use janus::comm::runtime::run_on;
use janus::comm::tcp::tcp_mesh_localhost;
use janus::core::exec::data_centric::{run_iteration, MachineShared};
use janus::core::exec::model::{ExecConfig, WorkerState};

fn main() {
    let cfg = ExecConfig {
        machines: 2,
        gpus_per_machine: 2,
        hidden_dim: 8,
        blocks: 2,
        experts: 8,
        experts_per_block: vec![],
        top_k: 2,
        tokens: 16,
        seed: 11,
        lr: 0.05,
    };
    println!("bringing up a {}-rank TCP mesh on localhost…", cfg.world());
    let endpoints = tcp_mesh_localhost(cfg.world()).expect("mesh setup");
    let shared = MachineShared::for_cluster(&cfg);

    let losses = run_on(endpoints, |comm| {
        let mut state = WorkerState::init(&cfg, comm.rank());
        let sh = &shared[cfg.machine_of(comm.rank())];
        let mut losses = Vec::new();
        for i in 0..5 {
            let out = run_iteration(&comm, &mut state, sh, i).expect("iteration over TCP");
            losses.push(out.loss);
        }
        losses
    });

    for (rank, curve) in losses.iter().enumerate() {
        let first = curve.first().expect("at least one iteration");
        let last = curve.last().expect("at least one iteration");
        println!("rank {rank}: loss {first:.4} → {last:.4}");
        assert!(last < first, "training must make progress");
    }
    let stats = shared[0].cache.stats();
    let (fetches, hits) = (stats.fetches, stats.hits);
    println!("\nmachine-0 cache: {fetches} cross-machine fetches, {hits} local hits");
    println!("every expert crossed the wire once per machine per block per iteration —");
    println!("the hierarchical fetch working over real sockets.");
}
