//! The FFN expert — the unit of weight the data-centric paradigm moves.

use janus_tensor::{add_bias_gelu, gelu_backward_into, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A two-layer feed-forward expert: `y = W2 · gelu(W1·x + b1) + b2` with
/// the standard `4H` inner width, so its weights are the `8H²` the paper
/// counts in §5.1.3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpertFfn {
    /// First projection, `H × 4H`.
    pub w1: Matrix,
    /// First bias, length `4H`.
    pub b1: Vec<f32>,
    /// Second projection, `4H × H`.
    pub w2: Matrix,
    /// Second bias, length `H`.
    pub b2: Vec<f32>,
}

/// Gradients of an expert with respect to one batch of tokens, plus the
/// gradient flowing back to the inputs. Field layout mirrors [`ExpertFfn`]
/// so gradients can be applied or reduced with the same code paths that
/// move weights.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExpertGrads {
    /// d/dW1.
    pub w1: Matrix,
    /// d/db1.
    pub b1: Vec<f32>,
    /// d/dW2.
    pub w2: Matrix,
    /// d/db2.
    pub b2: Vec<f32>,
}

/// Activations cached by the forward pass for the backward pass.
#[derive(Debug, Clone)]
pub struct ExpertCache {
    /// Input tokens.
    x: Matrix,
    /// Pre-activation of the first layer.
    pre: Matrix,
    /// Post-GeLU hidden.
    hidden: Matrix,
}

/// Reusable buffers for one expert-slot's forward + backward pass.
///
/// Every intermediate of `y = W2·gelu(W1·x + b1) + b2` and its backward
/// lives here — the input gather (`x`), the forward products
/// (`pre`/`hidden`/`y`), the backward temporaries
/// (`dy`/`dhidden`/`dpre`/`dx`), and the weight gradients (`grad`).
/// [`ExpertFfn::forward_scratch`] / [`ExpertFfn::backward_scratch`]
/// resize-in-place instead of allocating, so once shapes stabilize an
/// expert pass touches the allocator zero times per iteration. The
/// forward products double as the activation cache: the scratch *is* the
/// tape entry for its expert slot, held between forward and backward.
///
/// Buffer reuse never changes numerics: every kernel writing into a
/// scratch buffer overwrites all of it, so results are bitwise identical
/// to fresh allocation (property-tested).
#[derive(Debug, Clone, Default)]
pub struct ExpertScratch {
    /// Input tokens of the recorded pass (fill via
    /// [`Matrix::gather_rows_into`] or [`ExpertScratch::set_input`]).
    pub x: Matrix,
    /// Pre-activation `x·W1 + b1`.
    pub pre: Matrix,
    /// Post-GeLU hidden `gelu(pre)`.
    pub hidden: Matrix,
    /// Expert output `hidden·W2 + b2`.
    pub y: Matrix,
    /// Output-gradient staging for the backward pass.
    pub dy: Matrix,
    /// Backward temporary `dy·W2ᵀ`.
    pub dhidden: Matrix,
    /// Backward temporary `gelu'(pre)·dhidden`.
    pub dpre: Matrix,
    /// Gradient with respect to the inputs, `dpre·W1ᵀ`.
    pub dx: Matrix,
    /// Weight gradients of the recorded pass.
    pub grad: ExpertGrads,
}

impl ExpertScratch {
    /// Fresh scratch; buffers size themselves on first use.
    pub fn new() -> Self {
        ExpertScratch::default()
    }

    /// Copy `x` into the input buffer (reusing its allocation).
    pub fn set_input(&mut self, x: &Matrix) {
        self.x.resize(x.rows(), x.cols());
        self.x.data_mut().copy_from_slice(x.data());
    }
}

impl ExpertFfn {
    /// Random expert with `hidden_dim = H`.
    pub fn new<R: Rng>(hidden_dim: usize, rng: &mut R) -> Self {
        let inner = 4 * hidden_dim;
        let s1 = (1.0 / hidden_dim as f32).sqrt();
        let s2 = (1.0 / inner as f32).sqrt();
        ExpertFfn {
            w1: Matrix::uniform(hidden_dim, inner, s1, rng),
            b1: vec![0.0; inner],
            w2: Matrix::uniform(inner, hidden_dim, s2, rng),
            b2: vec![0.0; hidden_dim],
        }
    }

    /// Token dimension `H`.
    pub fn hidden_dim(&self) -> usize {
        self.w1.rows()
    }

    /// Parameter count (`8H² + 5H`).
    pub fn param_count(&self) -> usize {
        let h = self.hidden_dim();
        8 * h * h + 5 * h
    }

    /// Forward pass over a token batch (`tokens × H`), returning the
    /// output and the cache needed for backward.
    ///
    /// Allocating wrapper over [`ExpertFfn::forward_scratch`]; steady-state
    /// callers (the execution engines) use the scratch path directly.
    pub fn forward(&self, x: &Matrix) -> (Matrix, ExpertCache) {
        let mut s = ExpertScratch::new();
        s.set_input(x);
        self.forward_scratch(&mut s);
        let ExpertScratch {
            x, pre, hidden, y, ..
        } = s;
        (y, ExpertCache { x, pre, hidden })
    }

    /// Backward pass: given `dy` (`tokens × H`), return weight gradients
    /// and the gradient with respect to the inputs.
    ///
    /// Allocating wrapper over [`ExpertFfn::backward_scratch`].
    pub fn backward(&self, cache: &ExpertCache, dy: &Matrix) -> (ExpertGrads, Matrix) {
        let mut s = ExpertScratch {
            x: cache.x.clone(),
            pre: cache.pre.clone(),
            hidden: cache.hidden.clone(),
            ..ExpertScratch::default()
        };
        self.backward_scratch(dy, &mut s);
        let ExpertScratch { dx, grad, .. } = s;
        (grad, dx)
    }

    /// Zero-alloc forward over the tokens in `s.x`: fills `s.pre`,
    /// `s.hidden` (the activation tape) and `s.y` in place. Bitwise
    /// identical to [`ExpertFfn::forward`].
    pub fn forward_scratch(&self, s: &mut ExpertScratch) {
        assert_eq!(s.x.cols(), self.hidden_dim(), "token dim mismatch");
        s.x.matmul_into(&self.w1, &mut s.pre);
        add_bias_gelu(&mut s.pre, &self.b1, &mut s.hidden);
        s.hidden.matmul_into(&self.w2, &mut s.y);
        s.y.add_bias(&self.b2);
    }

    /// Zero-alloc backward for the pass recorded in `s` (which must still
    /// hold that pass's `x`/`pre`/`hidden`): writes the weight gradients
    /// into `s.grad` and the input gradient into `s.dx`, using
    /// `s.dhidden`/`s.dpre` as temporaries. Bitwise identical to
    /// [`ExpertFfn::backward`].
    pub fn backward_scratch(&self, dy: &Matrix, s: &mut ExpertScratch) {
        s.hidden.matmul_tn_into(dy, &mut s.grad.w2);
        s.grad.b2.resize(dy.cols(), 0.0);
        dy.col_sums_into(&mut s.grad.b2);
        dy.matmul_nt_into(&self.w2, &mut s.dhidden);
        gelu_backward_into(&s.pre, &s.dhidden, &mut s.dpre);
        s.x.matmul_tn_into(&s.dpre, &mut s.grad.w1);
        s.grad.b1.resize(s.dpre.cols(), 0.0);
        s.dpre.col_sums_into(&mut s.grad.b1);
        s.dpre.matmul_nt_into(&self.w1, &mut s.dx);
    }

    /// SGD step.
    pub fn apply(&mut self, grads: &ExpertGrads, lr: f32) {
        apply_matrix(&mut self.w1, &grads.w1, lr);
        apply_vec(&mut self.b1, &grads.b1, lr);
        apply_matrix(&mut self.w2, &grads.w2, lr);
        apply_vec(&mut self.b2, &grads.b2, lr);
    }
}

impl ExpertGrads {
    /// Zero gradients shaped like `expert`.
    pub fn zeros_like(expert: &ExpertFfn) -> Self {
        ExpertGrads {
            w1: Matrix::zeros(expert.w1.rows(), expert.w1.cols()),
            b1: vec![0.0; expert.b1.len()],
            w2: Matrix::zeros(expert.w2.rows(), expert.w2.cols()),
            b2: vec![0.0; expert.b2.len()],
        }
    }

    /// Accumulate another contribution (the Inter-Node Scheduler's
    /// pre-reduction).
    pub fn accumulate(&mut self, other: &ExpertGrads) {
        self.w1.add_assign(&other.w1);
        self.w2.add_assign(&other.w2);
        for (a, b) in self.b1.iter_mut().zip(&other.b1) {
            *a += b;
        }
        for (a, b) in self.b2.iter_mut().zip(&other.b2) {
            *a += b;
        }
    }

    /// Largest absolute difference across all components.
    pub fn max_abs_diff(&self, other: &ExpertGrads) -> f32 {
        let mut d = self
            .w1
            .max_abs_diff(&other.w1)
            .max(self.w2.max_abs_diff(&other.w2));
        for (a, b) in self.b1.iter().zip(&other.b1) {
            d = d.max((a - b).abs());
        }
        for (a, b) in self.b2.iter().zip(&other.b2) {
            d = d.max((a - b).abs());
        }
        d
    }
}

fn apply_matrix(w: &mut Matrix, g: &Matrix, lr: f32) {
    for (wv, gv) in w.data_mut().iter_mut().zip(g.data()) {
        *wv -= lr * gv;
    }
}

fn apply_vec(b: &mut [f32], g: &[f32], lr: f32) {
    for (bv, gv) in b.iter_mut().zip(g) {
        *bv -= lr * gv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_tensor::check::{grad_rel_error, numeric_grad};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_expert(seed: u64) -> ExpertFfn {
        let mut rng = StdRng::seed_from_u64(seed);
        ExpertFfn::new(4, &mut rng)
    }

    #[test]
    fn shapes_and_param_count() {
        let e = small_expert(1);
        assert_eq!(e.w1.shape(), (4, 16));
        assert_eq!(e.w2.shape(), (16, 4));
        assert_eq!(e.param_count(), 8 * 16 + 5 * 4);
        assert_eq!(e.hidden_dim(), 4);
    }

    #[test]
    fn forward_shapes() {
        let e = small_expert(2);
        let mut rng = StdRng::seed_from_u64(3);
        let x = Matrix::uniform(7, 4, 1.0, &mut rng);
        let (y, _) = e.forward(&x);
        assert_eq!(y.shape(), (7, 4));
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let e = small_expert(4);
        let mut rng = StdRng::seed_from_u64(5);
        let x = Matrix::uniform(3, 4, 0.5, &mut rng);
        let loss = |m: &Matrix| e.forward(m).0.data().iter().sum::<f32>();
        let numeric = numeric_grad(&x, loss);
        let (y, cache) = e.forward(&x);
        let dy = Matrix::from_vec(y.rows(), y.cols(), vec![1.0; y.rows() * y.cols()]);
        let (_, dx) = e.backward(&cache, &dy);
        assert!(grad_rel_error(&dx, &numeric) < 1e-2, "rel err too large");
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let e = small_expert(6);
        let mut rng = StdRng::seed_from_u64(7);
        let x = Matrix::uniform(3, 4, 0.5, &mut rng);
        let (y, cache) = e.forward(&x);
        let dy = Matrix::from_vec(y.rows(), y.cols(), vec![1.0; y.rows() * y.cols()]);
        let (grads, _) = e.backward(&cache, &dy);

        // Perturb w1 entries and compare.
        let numeric_w1 = numeric_grad(&e.w1, |w1| {
            let mut e2 = e.clone();
            e2.w1 = w1.clone();
            e2.forward(&x).0.data().iter().sum::<f32>()
        });
        assert!(grad_rel_error(&grads.w1, &numeric_w1) < 1e-2);

        let numeric_w2 = numeric_grad(&e.w2, |w2| {
            let mut e2 = e.clone();
            e2.w2 = w2.clone();
            e2.forward(&x).0.data().iter().sum::<f32>()
        });
        assert!(grad_rel_error(&grads.w2, &numeric_w2) < 1e-2);
    }

    #[test]
    fn gradient_of_split_batch_sums_to_full_batch() {
        // The hierarchical backward (§5.1.2) relies on gradient
        // additivity across token shards.
        let e = small_expert(8);
        let mut rng = StdRng::seed_from_u64(9);
        let x = Matrix::uniform(6, 4, 0.5, &mut rng);
        let dy = Matrix::uniform(6, 4, 0.5, &mut rng);

        let (_, cache) = e.forward(&x);
        let (full, _) = e.backward(&cache, &dy);

        let x1 = x.gather_rows(&[0, 1, 2]);
        let x2 = x.gather_rows(&[3, 4, 5]);
        let dy1 = dy.gather_rows(&[0, 1, 2]);
        let dy2 = dy.gather_rows(&[3, 4, 5]);
        let (_, c1) = e.forward(&x1);
        let (_, c2) = e.forward(&x2);
        let (g1, _) = e.backward(&c1, &dy1);
        let (g2, _) = e.backward(&c2, &dy2);
        let mut sum = ExpertGrads::zeros_like(&e);
        sum.accumulate(&g1);
        sum.accumulate(&g2);
        assert!(sum.max_abs_diff(&full) < 1e-4);
    }

    #[test]
    fn scratch_reuse_is_bitwise_identical_to_fresh_allocation() {
        let e = small_expert(12);
        let mut rng = StdRng::seed_from_u64(13);
        let mut s = ExpertScratch::new();
        // Reuse one scratch across passes of *different* token counts so
        // stale sizes/contents would surface if any kernel under-wrote.
        for tokens in [5usize, 3, 8, 1, 8] {
            let x = Matrix::uniform(tokens, 4, 0.7, &mut rng);
            let dy = Matrix::uniform(tokens, 4, 0.7, &mut rng);

            let (y_fresh, cache) = e.forward(&x);
            let (g_fresh, dx_fresh) = e.backward(&cache, &dy);

            s.set_input(&x);
            e.forward_scratch(&mut s);
            assert_eq!(
                s.y.max_abs_diff(&y_fresh),
                0.0,
                "forward differs at t={tokens}"
            );
            e.backward_scratch(&dy, &mut s);
            assert_eq!(
                s.dx.max_abs_diff(&dx_fresh),
                0.0,
                "dx differs at t={tokens}"
            );
            assert_eq!(
                s.grad.max_abs_diff(&g_fresh),
                0.0,
                "grads differ at t={tokens}"
            );
        }
    }

    #[test]
    fn sgd_step_reduces_simple_loss() {
        let mut e = small_expert(10);
        let mut rng = StdRng::seed_from_u64(11);
        let x = Matrix::uniform(8, 4, 0.5, &mut rng);
        let target = Matrix::zeros(8, 4);
        let loss_of = |e: &ExpertFfn| {
            let (y, _) = e.forward(&x);
            let d = y.sub(&target);
            d.norm()
        };
        let before = loss_of(&e);
        for _ in 0..20 {
            let (y, cache) = e.forward(&x);
            let mut dy = y.sub(&target);
            dy.scale(2.0);
            let (grads, _) = e.backward(&cache, &dy);
            e.apply(&grads, 0.01);
        }
        let after = loss_of(&e);
        assert!(
            after < before * 0.8,
            "loss did not decrease: {before} -> {after}"
        );
    }
}
