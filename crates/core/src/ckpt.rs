//! Deterministic training checkpoints.
//!
//! A [`Checkpoint`] captures everything a rank needs to resume training
//! bit-for-bit: its expert shard, the iteration counter, the digest of
//! the compiled [`crate::plan::IterationPlan`] it was executing, the RNG
//! cursor, and the full [`ExecConfig`]. Everything else a worker holds —
//! gates, inputs, scratch buffers — is a pure deterministic function of
//! the config, so restoring the shard and replaying from the captured
//! iteration reproduces the fault-free trajectory exactly.
//!
//! The wire format is versioned, little-endian, and checksummed:
//!
//! ```text
//! magic   "JCK1"            4 bytes
//! version u32               (version u16 in the high half, flags u16 low)
//! rank    u32               world u32
//! iter    u64               (iterations completed when captured)
//! plan_digest u64           (FNV of the compiled IterationPlan)
//! rng_cursor  u64           (base seed; all live randomness derives
//!                            from it at init, so the cursor IS the seed)
//! cfg     binary fields     (ExecConfig field by field, for mismatch
//!                            detection; u32/u64 values plus the f32
//!                            learning rate as raw bits — JSON would
//!                            round u64 seeds through f64)
//! blocks  u32
//!   per block:  u32 n       (local experts)
//!     per expert: u32 len + expert blob (weights.rs layout)
//! opt     u8 kind + u32 len + bytes   (kind 0 = plain SGD, no state)
//! placement (only when flags bit 0 is set):
//!         epoch u64 + world u32 + live u8×world
//!         blocks u32, per block: u32 n + owner u32×n
//! checksum u64              (FNV-1a over every preceding byte)
//! ```
//!
//! The placement section exists only for runs whose expert→rank table
//! has diverged from the default balanced layout (elastic migration,
//! §DESIGN 15). A default-placement checkpoint sets no flag and emits
//! no section, so every pre-elastic checkpoint byte stream — and its
//! checksum — is unchanged.
//!
//! The checksum is verified *before* any field is parsed, so a corrupted
//! checkpoint is rejected with a clear [`CkptError::Checksum`] instead of
//! a confusing decode error (or, worse, silently wrong weights).

use crate::exec::model::{ExecConfig, WorkerState};
use crate::exec::obs;
use crate::exec::weights::{expert_from_bytes, expert_to_bytes};
use crate::placement::Placement;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use janus_moe::expert::ExpertFfn;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;

const MAGIC: &[u8; 4] = b"JCK1";
const VERSION: u16 = 1;
/// Flags bit 0: a placement section follows the optimizer state.
const FLAG_PLACEMENT: u16 = 0x1;
/// Optimizer-state kind tag: plain SGD carries no state.
const OPT_SGD: u8 = 0;

/// Why a checkpoint could not be loaded or applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// The blob is shorter than the field being read.
    Truncated(String),
    /// The stored checksum does not match the bytes. The checkpoint is
    /// corrupt; refusing to load it.
    Checksum { stored: u64, computed: u64 },
    /// The blob does not start with the `JCK1` magic.
    BadMagic,
    /// The format version is newer than this build understands.
    Version(u16),
    /// A field failed to decode after the checksum passed.
    Decode(String),
    /// The checkpoint is valid but does not belong to this worker
    /// (different config, rank, or plan).
    Mismatch(String),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Truncated(what) => write!(f, "checkpoint truncated: {what}"),
            CkptError::Checksum { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: stored {stored:#018x}, \
                 computed {computed:#018x}; refusing to load corrupt state"
            ),
            CkptError::BadMagic => write!(f, "not a checkpoint: bad magic (want \"JCK1\")"),
            CkptError::Version(v) => write!(f, "unsupported checkpoint version {v}"),
            CkptError::Decode(what) => write!(f, "checkpoint decode failed: {what}"),
            CkptError::Mismatch(what) => write!(f, "checkpoint does not match worker: {what}"),
        }
    }
}

impl std::error::Error for CkptError {}

/// FNV-1a 64-bit over `bytes` — the same cheap, dependency-free digest
/// the plan compiler uses.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// When the trainer writes checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointPolicy {
    /// Never checkpoint (the default; zero overhead).
    #[default]
    Never,
    /// Checkpoint after every `n`-th completed iteration (`n = 0` is
    /// equivalent to [`CheckpointPolicy::Never`]).
    EveryN(u64),
}

impl CheckpointPolicy {
    /// Should a checkpoint be written after `completed` iterations?
    /// (`completed` counts finished iterations, so it is 1-based.)
    pub fn should_save(&self, completed: u64) -> bool {
        match *self {
            CheckpointPolicy::Never => false,
            CheckpointPolicy::EveryN(n) => n > 0 && completed > 0 && completed.is_multiple_of(n),
        }
    }
}

/// A full per-rank training snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Which rank this snapshot belongs to.
    pub rank: u32,
    /// World size when captured (guards against topology changes).
    pub world: u32,
    /// Iterations completed when this snapshot was taken: resuming from
    /// it means the next iteration to run is `iter`.
    pub iter: u64,
    /// Digest of the compiled [`crate::plan::IterationPlan`] the run was
    /// executing — a restored rank must execute the same plan.
    pub plan_digest: u64,
    /// RNG cursor. The engines hold no live RNG between iterations
    /// (every stochastic quantity is derived from the seed at init), so
    /// the cursor is the base seed itself; it is stored explicitly so a
    /// format reader never needs that invariant to interpret the file.
    pub rng_cursor: u64,
    /// The run configuration (for mismatch detection on restore).
    pub cfg: ExecConfig,
    /// Expert→rank table when it has diverged from the default balanced
    /// layout (elastic migration); `None` for the default placement, so
    /// pre-elastic checkpoints encode byte-identically.
    pub placement: Option<Placement>,
    /// Owned expert shard: `experts[block][local_index]`, local order =
    /// ascending global expert id under the captured placement.
    pub experts: Vec<Vec<ExpertFfn>>,
}

impl Checkpoint {
    /// Snapshot `state` after it completed `iter` iterations of the plan
    /// with digest `plan_digest`.
    pub fn capture(state: &WorkerState, iter: u64, plan_digest: u64) -> Checkpoint {
        let placement = if state.placement.is_default() {
            None
        } else {
            Some((*state.placement).clone())
        };
        Checkpoint {
            rank: state.rank as u32,
            world: state.cfg.world() as u32,
            iter,
            plan_digest,
            rng_cursor: state.cfg.seed,
            cfg: state.cfg.clone(),
            placement,
            experts: state.experts.clone(),
        }
    }

    /// The expert→rank table this snapshot was captured under: the
    /// stored one, or the config's default balanced layout.
    pub fn effective_placement(&self) -> Placement {
        self.placement
            .clone()
            .unwrap_or_else(|| WorkerState::balanced_placement(&self.cfg))
    }

    /// Apply this snapshot to `state`, which must have been initialized
    /// for the same config and rank (everything outside the expert shard
    /// is already a deterministic function of the config).
    pub fn restore(&self, state: &mut WorkerState) -> Result<(), CkptError> {
        if self.cfg != state.cfg {
            return Err(CkptError::Mismatch(format!(
                "config differs (checkpoint seed {}, worker seed {})",
                self.cfg.seed, state.cfg.seed
            )));
        }
        if self.rank as usize != state.rank {
            return Err(CkptError::Mismatch(format!(
                "checkpoint is for rank {}, worker is rank {}",
                self.rank, state.rank
            )));
        }
        if self.world as usize != state.cfg.world() {
            return Err(CkptError::Mismatch(format!(
                "checkpoint world {} != worker world {}",
                self.world,
                state.cfg.world()
            )));
        }
        let placement = self.effective_placement();
        if *state.placement != placement {
            return Err(CkptError::Mismatch(format!(
                "placement differs (checkpoint epoch {} digest {:#018x}, worker epoch {} \
                 digest {:#018x})",
                placement.epoch,
                placement.digest(),
                state.placement.epoch,
                state.placement.digest()
            )));
        }
        for (b, shard) in self.experts.iter().enumerate() {
            let want = placement.owned_in(b, state.rank).len();
            if shard.len() != want {
                return Err(CkptError::Mismatch(format!(
                    "block {b}: checkpoint holds {} local experts, placement expects {want}",
                    shard.len()
                )));
            }
        }
        state.experts = self.experts.clone();
        Ok(())
    }

    /// Serialize to the versioned, checksummed wire format. Encoding the
    /// same snapshot always yields the same bytes (field order is fixed
    /// and every field — including the embedded config — is binary, not
    /// text), which is what makes `save(load(x)) == x` bitwise.
    pub fn to_bytes(&self) -> Bytes {
        let span = obs::span(self.rank as usize, "ckpt", || {
            (
                format!("ckpt_save/r{}/i{}", self.rank, self.iter),
                "ckpt".to_string(),
            )
        });
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        let flags = if self.placement.is_some() {
            FLAG_PLACEMENT
        } else {
            0
        };
        buf.put_u32(((VERSION as u32) << 16) | flags as u32); // version high, flags low
        buf.put_u32(self.rank);
        buf.put_u32(self.world);
        buf.put_u64(self.iter);
        buf.put_u64(self.plan_digest);
        buf.put_u64(self.rng_cursor);
        put_cfg(&mut buf, &self.cfg);
        buf.put_u32(self.experts.len() as u32);
        for shard in &self.experts {
            buf.put_u32(shard.len() as u32);
            for expert in shard {
                let blob = expert_to_bytes(expert);
                buf.put_u32(blob.len() as u32);
                buf.put_slice(&blob);
            }
        }
        buf.put_u8(OPT_SGD);
        buf.put_u32(0); // plain SGD carries no optimizer state
        if let Some(p) = &self.placement {
            put_placement(&mut buf, p);
        }
        let checksum = fnv1a(buf.as_ref());
        buf.put_u64(checksum);
        let out = buf.freeze();
        janus_obs::global().count("janus_ckpt_bytes_written_total", out.len() as u64);
        obs::end_into(span, "janus_ckpt_save_us");
        out
    }

    /// Parse the wire format, verifying the checksum over the whole blob
    /// *before* interpreting any field.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, CkptError> {
        // Rank lives at a fixed offset; peek it (pre-checksum) only to
        // label the load span.
        let span_rank = if bytes.len() >= 12 {
            u32::from_be_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize
        } else {
            0
        };
        let span = obs::span(span_rank, "ckpt", || {
            (format!("ckpt_load/r{span_rank}"), "ckpt".to_string())
        });
        let ckpt = Self::parse(bytes)?;
        janus_obs::global().count("janus_ckpt_bytes_read_total", bytes.len() as u64);
        obs::end_into(span, "janus_ckpt_load_us");
        Ok(ckpt)
    }

    fn parse(bytes: &[u8]) -> Result<Checkpoint, CkptError> {
        if bytes.len() < MAGIC.len() + 8 {
            return Err(CkptError::Truncated(format!(
                "{} bytes is too short to hold even the header and checksum",
                bytes.len()
            )));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_be_bytes(trailer.try_into().expect("8-byte trailer"));
        let computed = fnv1a(body);
        if stored != computed {
            return Err(CkptError::Checksum { stored, computed });
        }
        let mut buf = Bytes::from(body.to_vec());
        let need = |buf: &Bytes, n: usize, what: &str| {
            if buf.remaining() < n {
                Err(CkptError::Truncated(format!("{what}: need {n} more bytes")))
            } else {
                Ok(())
            }
        };
        need(&buf, 4, "magic")?;
        if buf.split_to(4).as_ref() != MAGIC {
            return Err(CkptError::BadMagic);
        }
        need(&buf, 4, "version")?;
        let word = buf.get_u32();
        let version = (word >> 16) as u16;
        let flags = word as u16;
        if version != VERSION {
            return Err(CkptError::Version(version));
        }
        need(&buf, 32, "header")?;
        let rank = buf.get_u32();
        let world = buf.get_u32();
        let iter = buf.get_u64();
        let plan_digest = buf.get_u64();
        let rng_cursor = buf.get_u64();
        let cfg = get_cfg(&mut buf)?;
        need(&buf, 4, "block count")?;
        let blocks = buf.get_u32() as usize;
        let mut experts = Vec::with_capacity(blocks);
        for b in 0..blocks {
            need(&buf, 4, "shard size")?;
            let n = buf.get_u32() as usize;
            let mut shard = Vec::with_capacity(n);
            for e in 0..n {
                need(&buf, 4, "expert blob length")?;
                let len = buf.get_u32() as usize;
                need(&buf, len, "expert blob")?;
                let expert = expert_from_bytes(buf.split_to(len))
                    .map_err(|err| CkptError::Decode(format!("block {b} expert {e}: {err}")))?;
                shard.push(expert);
            }
            experts.push(shard);
        }
        need(&buf, 5, "optimizer section")?;
        let opt_kind = buf.get_u8();
        if opt_kind != OPT_SGD {
            return Err(CkptError::Decode(format!(
                "unknown optimizer-state kind {opt_kind}"
            )));
        }
        let opt_len = buf.get_u32() as usize;
        need(&buf, opt_len, "optimizer state")?;
        buf.advance(opt_len);
        let placement = if flags & FLAG_PLACEMENT != 0 {
            Some(get_placement(&mut buf)?)
        } else {
            None
        };
        if buf.has_remaining() {
            return Err(CkptError::Decode(format!(
                "{} trailing bytes at end of checkpoint",
                buf.remaining()
            )));
        }
        Ok(Checkpoint {
            rank,
            world,
            iter,
            plan_digest,
            rng_cursor,
            cfg,
            placement,
            experts,
        })
    }
}

/// Append `cfg` to the wire buffer field by field. Binary on purpose:
/// a JSON detour would round u64 seeds through f64 and corrupt them.
fn put_cfg(buf: &mut BytesMut, cfg: &ExecConfig) {
    buf.put_u32(cfg.machines as u32);
    buf.put_u32(cfg.gpus_per_machine as u32);
    buf.put_u32(cfg.hidden_dim as u32);
    buf.put_u32(cfg.blocks as u32);
    buf.put_u32(cfg.experts as u32);
    buf.put_u32(cfg.experts_per_block.len() as u32);
    for &e in &cfg.experts_per_block {
        buf.put_u32(e as u32);
    }
    buf.put_u32(cfg.top_k as u32);
    buf.put_u32(cfg.tokens as u32);
    buf.put_u64(cfg.seed);
    buf.put_u32(cfg.lr.to_bits());
}

/// Inverse of [`put_cfg`].
fn get_cfg(buf: &mut Bytes) -> Result<ExecConfig, CkptError> {
    let need = |buf: &Bytes, n: usize, what: &str| {
        if buf.remaining() < n {
            Err(CkptError::Truncated(format!(
                "config {what}: need {n} more bytes"
            )))
        } else {
            Ok(())
        }
    };
    need(buf, 24, "fixed fields")?;
    let machines = buf.get_u32() as usize;
    let gpus_per_machine = buf.get_u32() as usize;
    let hidden_dim = buf.get_u32() as usize;
    let blocks = buf.get_u32() as usize;
    let experts = buf.get_u32() as usize;
    let n_per_block = buf.get_u32() as usize;
    need(buf, n_per_block * 4, "per-block expert counts")?;
    let experts_per_block = (0..n_per_block).map(|_| buf.get_u32() as usize).collect();
    need(buf, 20, "trailing fields")?;
    let top_k = buf.get_u32() as usize;
    let tokens = buf.get_u32() as usize;
    let seed = buf.get_u64();
    let lr = f32::from_bits(buf.get_u32());
    Ok(ExecConfig {
        machines,
        gpus_per_machine,
        hidden_dim,
        blocks,
        experts,
        experts_per_block,
        top_k,
        tokens,
        seed,
        lr,
    })
}

/// Append the placement table to the wire buffer: epoch, world, live
/// flags, then per-block owner vectors.
fn put_placement(buf: &mut BytesMut, p: &Placement) {
    buf.put_u64(p.epoch);
    buf.put_u32(p.world() as u32);
    for &alive in &p.live {
        buf.put_u8(alive as u8);
    }
    buf.put_u32(p.owners.len() as u32);
    for block in &p.owners {
        buf.put_u32(block.len() as u32);
        for &o in block {
            buf.put_u32(o);
        }
    }
}

/// Inverse of [`put_placement`].
fn get_placement(buf: &mut Bytes) -> Result<Placement, CkptError> {
    let need = |buf: &Bytes, n: usize, what: &str| {
        if buf.remaining() < n {
            Err(CkptError::Truncated(format!(
                "placement {what}: need {n} more bytes"
            )))
        } else {
            Ok(())
        }
    };
    need(buf, 12, "header")?;
    let epoch = buf.get_u64();
    let world = buf.get_u32() as usize;
    need(buf, world, "live flags")?;
    let live: Vec<bool> = (0..world).map(|_| buf.get_u8() != 0).collect();
    need(buf, 4, "block count")?;
    let blocks = buf.get_u32() as usize;
    let mut owners = Vec::with_capacity(blocks);
    for b in 0..blocks {
        need(buf, 4, "owner count")?;
        let n = buf.get_u32() as usize;
        need(buf, n * 4, "owner vector")?;
        let block: Vec<u32> = (0..n).map(|_| buf.get_u32()).collect();
        if let Some(&bad) = block.iter().find(|&&o| o as usize >= world) {
            return Err(CkptError::Decode(format!(
                "placement block {b}: owner {bad} out of range for world {world}"
            )));
        }
        owners.push(block);
    }
    Ok(Placement {
        epoch,
        owners,
        live,
    })
}

/// An in-memory checkpoint store keyed by `(rank, iter)` — the moral
/// equivalent of a checkpoint directory, holding the encoded blobs the
/// supervisor commits and restores from.
#[derive(Default)]
pub struct CkptStore {
    inner: Mutex<HashMap<(usize, u64), Bytes>>,
}

impl CkptStore {
    /// Empty store.
    pub fn new() -> Self {
        CkptStore::default()
    }

    /// Commit one rank's checkpoint bytes for iteration cut `iter`.
    pub fn put(&self, rank: usize, iter: u64, bytes: Bytes) {
        self.inner.lock().insert((rank, iter), bytes);
    }

    /// The stored blob for `(rank, iter)`, if any.
    pub fn get(&self, rank: usize, iter: u64) -> Option<Bytes> {
        self.inner.lock().get(&(rank, iter)).cloned()
    }

    /// The most recent iteration cut for which *every* rank of a
    /// `world`-sized mesh has a checkpoint — the only cuts that are safe
    /// to restore a run from.
    pub fn latest_full_cut(&self, world: usize) -> Option<u64> {
        let map = self.inner.lock();
        map.keys()
            .map(|&(_, iter)| iter)
            .filter(|&iter| (0..world).all(|r| map.contains_key(&(r, iter))))
            .max()
    }

    /// Number of stored blobs.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when nothing has been committed.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Total bytes held across all blobs.
    pub fn total_bytes(&self) -> u64 {
        self.inner.lock().values().map(|b| b.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rank: usize) -> (WorkerState, Checkpoint) {
        let cfg = ExecConfig::small();
        let state = WorkerState::init(&cfg, rank);
        let ckpt = Checkpoint::capture(&state, 3, 0xDEAD_BEEF);
        (state, ckpt)
    }

    #[test]
    fn roundtrip_is_bitwise_identical() {
        let (_, ckpt) = sample(1);
        let bytes = ckpt.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, ckpt);
        // save(load(x)) == x at the byte level, not just structurally.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn restore_replaces_the_expert_shard() {
        let (mut state, ckpt) = sample(0);
        // Perturb the live shard, then restore.
        state.experts[0][0].b1[0] += 1.0;
        assert_ne!(state.experts, ckpt.experts);
        ckpt.restore(&mut state).unwrap();
        assert_eq!(state.experts, ckpt.experts);
    }

    #[test]
    fn corrupted_byte_is_rejected_by_checksum() {
        let (_, ckpt) = sample(0);
        let mut bytes = ckpt.to_bytes().to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let err = Checkpoint::from_bytes(&bytes).unwrap_err();
        assert!(
            matches!(err, CkptError::Checksum { .. }),
            "want checksum rejection, got {err}"
        );
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn truncated_blob_is_rejected() {
        let (_, ckpt) = sample(0);
        let bytes = ckpt.to_bytes();
        let err = Checkpoint::from_bytes(&bytes[..10]).unwrap_err();
        assert!(matches!(err, CkptError::Truncated(_)), "{err}");
    }

    #[test]
    fn wrong_rank_restore_is_a_mismatch() {
        let (_, ckpt) = sample(0);
        let cfg = ExecConfig::small();
        let mut other = WorkerState::init(&cfg, 1);
        let err = ckpt.restore(&mut other).unwrap_err();
        assert!(err.to_string().contains("rank"), "{err}");
    }

    #[test]
    fn wrong_config_restore_is_a_mismatch() {
        let (_, ckpt) = sample(0);
        let cfg = ExecConfig {
            seed: 1234,
            ..ExecConfig::small()
        };
        let mut other = WorkerState::init(&cfg, 0);
        let err = ckpt.restore(&mut other).unwrap_err();
        assert!(matches!(err, CkptError::Mismatch(_)), "{err}");
    }

    #[test]
    fn default_placement_emits_no_section_and_no_flag() {
        let (_, ckpt) = sample(0);
        assert!(ckpt.placement.is_none());
        let bytes = ckpt.to_bytes();
        // Flags live in the low half of the version word at offset 4.
        let flags = u16::from_be_bytes([bytes[6], bytes[7]]);
        assert_eq!(flags & FLAG_PLACEMENT, 0);
        assert_eq!(ckpt.effective_placement().epoch, 0);
    }

    #[test]
    fn migrated_placement_roundtrips_through_the_wire() {
        let cfg = ExecConfig::small();
        let placement = WorkerState::balanced_placement(&cfg).drain(cfg.world() - 1);
        let state = WorkerState::init_placed(&cfg, 0, placement.clone());
        let ckpt = Checkpoint::capture(&state, 7, 0xBEEF);
        assert_eq!(ckpt.placement.as_ref(), Some(&placement));
        let bytes = ckpt.to_bytes();
        let flags = u16::from_be_bytes([bytes[6], bytes[7]]);
        assert_ne!(flags & FLAG_PLACEMENT, 0);
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, ckpt);
        assert_eq!(back.to_bytes(), bytes);
        assert_eq!(back.effective_placement(), placement);
    }

    #[test]
    fn placement_mismatch_restore_is_rejected() {
        let cfg = ExecConfig::small();
        let placement = WorkerState::balanced_placement(&cfg).drain(cfg.world() - 1);
        let state = WorkerState::init_placed(&cfg, 0, placement);
        let ckpt = Checkpoint::capture(&state, 7, 0xBEEF);
        // A default-placement worker must not accept a migrated shard.
        let mut fresh = WorkerState::init(&cfg, 0);
        let err = ckpt.restore(&mut fresh).unwrap_err();
        assert!(err.to_string().contains("placement"), "{err}");
    }

    #[test]
    fn policy_fires_on_multiples_only() {
        assert!(!CheckpointPolicy::Never.should_save(5));
        let every2 = CheckpointPolicy::EveryN(2);
        assert!(!every2.should_save(0));
        assert!(!every2.should_save(1));
        assert!(every2.should_save(2));
        assert!(!every2.should_save(3));
        assert!(every2.should_save(4));
        assert!(!CheckpointPolicy::EveryN(0).should_save(4));
    }

    #[test]
    fn store_tracks_full_cuts() {
        let store = CkptStore::new();
        assert!(store.is_empty());
        assert_eq!(store.latest_full_cut(2), None);
        store.put(0, 2, Bytes::from("a"));
        assert_eq!(store.latest_full_cut(2), None, "rank 1 missing at cut 2");
        store.put(1, 2, Bytes::from("bb"));
        assert_eq!(store.latest_full_cut(2), Some(2));
        store.put(0, 4, Bytes::from("c"));
        assert_eq!(store.latest_full_cut(2), Some(2), "cut 4 is partial");
        store.put(1, 4, Bytes::from("d"));
        assert_eq!(store.latest_full_cut(2), Some(4));
        assert_eq!(store.len(), 4);
        assert_eq!(store.total_bytes(), 5);
    }
}
