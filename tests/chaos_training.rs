//! Seeded chaos matrix: unified training must survive lossy links — and
//! crashed ranks.
//!
//! Each case stacks `ReliableTransport` over `FaultyTransport` over the
//! in-process mesh and trains with the unified engine while the fault
//! plan drops, delays, duplicates, reorders, and partitions traffic. The
//! reliability layer restores exactly-once per-pair FIFO delivery, and
//! because every gradient fold is ordered by sender (not arrival), the
//! result must be **bitwise identical** to the fault-free run — across
//! fault profiles, chaos seeds, and compute thread counts.
//!
//! The crash dimension goes further: `CrashPoint`s kill whole ranks
//! mid-iteration or mid-send, the supervisor restores the survivors'
//! world from the latest committed checkpoint cut, and the finished run
//! must *still* be bitwise identical to the fault-free one.
//!
//! Every test runs under a watchdog: a hung collective is reported as a
//! failure, never as a stuck CI job.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use janus::comm::faulty::{CrashAt, CrashPoint, FaultPlan, FaultyTransport, Partition};
use janus::comm::local::local_mesh;
use janus::comm::reliable::{ReliableTransport, RetransmitPolicy};
use janus::comm::runtime::run_on;
use janus::comm::transport::CommError;
use janus::core::exec::data_centric::{self, MachineShared};
use janus::core::exec::model::{CommSnapshot, ExecConfig, PullRetryPolicy, WorkerState};
use janus::core::exec::supervisor::{train_supervised, SupervisorOpts};
use janus::core::exec::trainer::{diff_runs, train_unified, train_unified_on, TrainRun};
use janus::core::plan::PlanOpts;
use janus::tensor::pool;

const ITERS: u64 = 3;

/// `pool::set_threads` is process-global, so tests that sweep thread
/// counts serialize on this lock instead of racing each other.
static THREAD_SWEEP: Mutex<()> = Mutex::new(());

fn cfg() -> ExecConfig {
    ExecConfig {
        machines: 2,
        gpus_per_machine: 2,
        hidden_dim: 8,
        blocks: 2,
        experts: 8,
        experts_per_block: vec![],
        top_k: 2,
        tokens: 12,
        seed: 99,
        lr: 0.03,
    }
}

/// Base chaos seed: `JANUS_CHAOS_SEED` (as set by the CI chaos shard) or
/// a fixed default. A second seed is derived so every local run still
/// covers two distinct fault schedules.
fn chaos_seeds() -> [u64; 2] {
    let base = std::env::var("JANUS_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE);
    [base, base ^ 0x9E37_79B9]
}

/// Retransmit policy tuned for tests: aggressive timeouts so dropped
/// messages recover in microseconds, with a budget far above anything a
/// fault plan here can exhaust.
fn chaos_policy() -> RetransmitPolicy {
    RetransmitPolicy {
        initial_backoff: Duration::from_micros(500),
        max_backoff: Duration::from_millis(8),
        max_attempts: 400,
        flush_quiet: Duration::from_millis(40),
        ..RetransmitPolicy::default()
    }
}

/// One reliable-over-faulty endpoint per rank.
fn chaos_mesh(
    world: usize,
    plan: &FaultPlan,
) -> Vec<ReliableTransport<FaultyTransport<janus::comm::local::LocalTransport>>> {
    local_mesh(world)
        .into_iter()
        .map(|t| {
            ReliableTransport::with_policy(FaultyTransport::new(t, plan.clone()), chaos_policy())
        })
        .collect()
}

/// The fault matrix: each profile exercises one failure mode, plus one
/// combined profile that layers them all.
fn fault_matrix(seed: u64, world: usize) -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "drops",
            FaultPlan {
                seed,
                drop: 0.05,
                ..FaultPlan::default()
            },
        ),
        (
            "delays",
            FaultPlan {
                seed,
                delay: 0.4,
                max_delay_ops: 5,
                ..FaultPlan::default()
            },
        ),
        (
            "duplicates",
            FaultPlan {
                seed,
                duplicate: 0.3,
                ..FaultPlan::default()
            },
        ),
        (
            "partition",
            FaultPlan {
                seed,
                partitions: vec![Partition {
                    a: 0,
                    b: world - 1,
                    from_op: 2,
                    to_op: 10,
                }],
                ..FaultPlan::default()
            },
        ),
        (
            "combined",
            FaultPlan {
                seed,
                drop: 0.03,
                delay: 0.2,
                max_delay_ops: 3,
                duplicate: 0.15,
                reorder: 0.25,
                partitions: vec![Partition {
                    a: 1,
                    b: 2,
                    from_op: 4,
                    to_op: 9,
                }],
                ..FaultPlan::default()
            },
        ),
    ]
}

/// Run `f` on a helper thread and panic if it does not finish within
/// `timeout` — turning any protocol hang into a loud, named failure.
fn with_watchdog<R: Send + 'static>(
    label: &str,
    timeout: Duration,
    f: impl FnOnce() -> R + Send + 'static,
) -> R {
    let (tx, rx) = mpsc::channel();
    let name = format!("chaos:{label}");
    std::thread::Builder::new()
        .name(name.clone())
        .spawn(move || {
            let _ = tx.send(f());
        })
        .expect("spawning watchdog worker");
    match rx.recv_timeout(timeout) {
        Ok(r) => r,
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            panic!("{name} panicked; the original panic is above in stderr")
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("watchdog: {name} did not finish within {timeout:?} (hang, not a diagnostic)")
        }
    }
}

/// Sum the per-rank reliability counters of a run.
fn total_counters(run: &TrainRun) -> CommSnapshot {
    let mut sum = CommSnapshot::default();
    for c in &run.comm {
        sum.pull_retries += c.pull_retries;
        sum.pull_timeouts += c.pull_timeouts;
        sum.retransmits += c.retransmits;
        sum.duplicates_dropped += c.duplicates_dropped;
        sum.acks_sent += c.acks_sent;
        sum.out_of_order_held += c.out_of_order_held;
        sum.faults_dropped += c.faults_dropped;
        sum.faults_delayed += c.faults_delayed;
        sum.faults_duplicated += c.faults_duplicated;
    }
    sum
}

/// The headline chaos matrix: every fault profile × two chaos seeds ×
/// two compute thread counts, all bitwise identical to the clean run.
///
/// One `#[test]` on purpose: `pool::set_threads` is process-global, so
/// the thread sweep must not race a concurrently running test.
#[test]
fn chaos_matrix_is_bitwise_identical_to_fault_free_run() {
    with_watchdog("matrix", Duration::from_secs(240), || {
        let _sweep = THREAD_SWEEP.lock().unwrap_or_else(|p| p.into_inner());
        let cfg = cfg();
        let mut baseline_across_threads: Option<TrainRun> = None;
        for threads in [1usize, 4] {
            pool::set_threads(threads);
            let baseline = train_unified(&cfg, ITERS);
            let clean = total_counters(&baseline);
            assert_eq!(
                clean,
                CommSnapshot::default(),
                "fault-free run must report zero reliability activity"
            );
            if let Some(prev) = &baseline_across_threads {
                let d = diff_runs(prev, &baseline);
                assert_eq!(d.max_output_diff, 0.0, "threads changed numerics: {d:?}");
                assert_eq!(d.max_weight_diff, 0.0, "threads changed numerics: {d:?}");
                assert_eq!(d.max_loss_diff, 0.0, "threads changed numerics: {d:?}");
            }
            for seed in chaos_seeds() {
                for (name, plan) in fault_matrix(seed, cfg.world()) {
                    let run = train_unified_on(chaos_mesh(cfg.world(), &plan), &cfg, ITERS);
                    let d = diff_runs(&baseline, &run);
                    let label = format!("{name} seed={seed:#x} threads={threads}");
                    assert_eq!(d.max_output_diff, 0.0, "{label}: {d:?}");
                    assert_eq!(d.max_weight_diff, 0.0, "{label}: {d:?}");
                    assert_eq!(d.max_loss_diff, 0.0, "{label}: {d:?}");

                    // Non-vacuity: the plan must actually have fired, and
                    // the reliability layer must actually have recovered.
                    let c = total_counters(&run);
                    match name {
                        "drops" | "partition" => {
                            assert!(c.faults_dropped > 0, "{label}: no drops injected: {c:?}");
                            assert!(c.retransmits > 0, "{label}: nothing retransmitted: {c:?}");
                        }
                        "delays" => {
                            assert!(c.faults_delayed > 0, "{label}: no delays injected: {c:?}");
                        }
                        "duplicates" => {
                            assert!(c.faults_duplicated > 0, "{label}: no dupes injected: {c:?}");
                            assert!(
                                c.duplicates_dropped > 0,
                                "{label}: receiver dropped no duplicates: {c:?}"
                            );
                        }
                        _ => {
                            assert!(
                                c.faults_dropped + c.faults_delayed + c.faults_duplicated > 0,
                                "{label}: combined plan injected nothing: {c:?}"
                            );
                        }
                    }
                    assert_eq!(c.pull_timeouts, 0, "{label}: a pull gave up: {c:?}");
                }
            }
            baseline_across_threads = Some(baseline);
        }
        pool::set_threads(0); // restore the JANUS_THREADS/env default
    })
}

/// The crash matrix: each scenario kills one or more ranks somewhere in
/// the run, optionally layered with link faults. The tuple's last field
/// is the minimum number of checkpoint restores the scenario must cause
/// (0 when the crash lands in the first round, which replays from
/// initialization rather than a committed cut).
fn crash_matrix(seed: u64, world: usize) -> Vec<(&'static str, FaultPlan, SupervisorOpts, u64)> {
    let sup = SupervisorOpts {
        retransmit: chaos_policy(),
        ..SupervisorOpts::default()
    };
    vec![
        (
            // Rank dies entering iteration 1; cut 1 is already committed,
            // so every rank restores from it and replays one iteration.
            "crash-iteration",
            FaultPlan {
                seed,
                crashes: vec![CrashPoint {
                    rank: world - 1,
                    at: CrashAt::Iteration(1),
                }],
                ..FaultPlan::default()
            },
            sup,
            world as u64,
        ),
        (
            // Rank dies mid-collective on a seed-chosen send; peers
            // blocked on it must surface `PeerDead`, not hang. Send
            // counters restart with each round's fresh mesh, so a low
            // index fires in round 0 and replays from initialization.
            "crash-send-op",
            FaultPlan {
                seed,
                crashes: vec![CrashPoint {
                    rank: 1,
                    at: CrashAt::SendOp(5 + seed % 6),
                }],
                ..FaultPlan::default()
            },
            sup,
            0,
        ),
        (
            // Coarser cuts: with `ckpt_every = 2` the crash at iteration
            // 2 lands one full round past the committed cut, forcing a
            // restore plus a multi-iteration replay.
            "crash-coarse-cut",
            FaultPlan {
                seed,
                crashes: vec![CrashPoint {
                    rank: 0,
                    at: CrashAt::Iteration(2),
                }],
                ..FaultPlan::default()
            },
            SupervisorOpts {
                ckpt_every: 2,
                ..sup
            },
            world as u64,
        ),
        (
            // Crash × drop × delay: the lossy link layer and the crash
            // layer recover independently and the result is still clean.
            "crash-drop-delay",
            FaultPlan {
                seed,
                drop: 0.03,
                delay: 0.2,
                max_delay_ops: 3,
                crashes: vec![CrashPoint {
                    rank: 2,
                    at: CrashAt::Iteration(1),
                }],
                ..FaultPlan::default()
            },
            sup,
            world as u64,
        ),
        (
            // Two distinct victims in two distinct rounds: two full
            // recovery cycles in one run.
            "double-crash",
            FaultPlan {
                seed,
                crashes: vec![
                    CrashPoint {
                        rank: 0,
                        at: CrashAt::Iteration(1),
                    },
                    CrashPoint {
                        rank: world - 1,
                        at: CrashAt::Iteration(2),
                    },
                ],
                ..FaultPlan::default()
            },
            sup,
            2 * world as u64,
        ),
    ]
}

/// The headline crash property: a run in which ranks are killed and
/// recovered from checkpoints is **bitwise identical** to the fault-free
/// run — across crash scenarios, chaos seeds, and thread counts.
#[test]
fn crash_recovery_is_bitwise_identical_to_fault_free_run() {
    with_watchdog("crash", Duration::from_secs(240), || {
        let _sweep = THREAD_SWEEP.lock().unwrap_or_else(|p| p.into_inner());
        let cfg = cfg();
        let opts = PlanOpts::default();
        for threads in [1usize, 4] {
            pool::set_threads(threads);
            let baseline = train_unified(&cfg, ITERS);
            for seed in chaos_seeds() {
                for (name, faults, sup, min_restores) in crash_matrix(seed, cfg.world()) {
                    let n_crashes = faults.crashes.len() as u64;
                    let label = format!("{name} seed={seed:#x} threads={threads}");
                    let (_, run, report) = train_supervised(&cfg, &opts, &sup, ITERS, faults)
                        .unwrap_or_else(|e| panic!("{label}: supervisor failed: {e}"));
                    let d = diff_runs(&baseline, &run);
                    assert_eq!(d.max_output_diff, 0.0, "{label}: {d:?}");
                    assert_eq!(d.max_weight_diff, 0.0, "{label}: {d:?}");
                    assert_eq!(d.max_loss_diff, 0.0, "{label}: {d:?}");

                    // Non-vacuity: every scheduled crash fired, every
                    // failed round was recovered, and the scenarios that
                    // promise a checkpoint restore delivered one.
                    assert!(
                        report.crashes >= n_crashes,
                        "{label}: {n_crashes} crashes scheduled, {} observed",
                        report.crashes
                    );
                    assert!(
                        report.recoveries >= n_crashes,
                        "{label}: {} recoveries for {n_crashes} crashes",
                        report.recoveries
                    );
                    assert!(
                        report.ckpts_restored >= min_restores,
                        "{label}: wanted >= {min_restores} restores, got {}: {report:?}",
                        report.ckpts_restored
                    );
                    assert!(
                        report.ckpts_written >= cfg.world() as u64,
                        "{label}: no full checkpoint cut was committed: {report:?}"
                    );
                    assert!(
                        report.replayed_iterations >= 1,
                        "{label}: a recovery must replay work: {report:?}"
                    );
                    assert_eq!(
                        report.recover_us.len() as u64,
                        report.recoveries,
                        "{label}: every recovery must be timed: {report:?}"
                    );
                }
            }
        }
        pool::set_threads(0); // restore the JANUS_THREADS/env default
    })
}

/// A data-centric pull whose owner never answers must fail loudly within
/// its retry budget — naming the block, the expert, and the deaf peer —
/// instead of hanging the iteration.
#[test]
fn unanswered_pull_fails_with_block_expert_peer_diagnostic() {
    with_watchdog("deaf-peer", Duration::from_secs(60), || {
        // Two machines × one GPU: rank 0 owns expert 0, rank 1 owns
        // expert 1; top_k = 2 forces rank 0 to pull expert 1 remotely.
        let cfg = ExecConfig {
            machines: 2,
            gpus_per_machine: 1,
            hidden_dim: 8,
            blocks: 1,
            experts: 2,
            experts_per_block: vec![],
            top_k: 2,
            tokens: 8,
            seed: 7,
            lr: 0.03,
        };
        let shared = MachineShared::for_cluster(&cfg);
        let done = Arc::new(AtomicBool::new(false));
        let results = run_on(local_mesh(cfg.world()), |comm| {
            if comm.rank() == 1 {
                // Deaf worker: holds its endpoint open (so the link stays
                // up) but never services a single pull request.
                while !done.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(2));
                }
                return None;
            }
            let mut state = WorkerState::init(&cfg, comm.rank());
            state.pull_retry = PullRetryPolicy {
                deadline: Duration::from_millis(40),
                max_attempts: 3,
            };
            let sh = &shared[cfg.machine_of(comm.rank())];
            let out = data_centric::run_iteration(&comm, &mut state, sh, 0);
            done.store(true, Ordering::Release);
            Some((out, state.comm.snapshot()))
        });
        let (out, counters) = results
            .into_iter()
            .flatten()
            .next()
            .expect("rank 0 must report a result");
        let err = out.expect_err("a deaf owner must fail the iteration, not hang it");
        match &err {
            CommError::Timeout { attempts, .. } => {
                assert_eq!(*attempts, 3, "budget must be spent exactly: {err}")
            }
            other => panic!("expected CommError::Timeout, got {other:?}"),
        }
        let msg = err.to_string();
        for needle in [
            "data-centric pull of expert 1",
            "(block 0)",
            "peer rank 1",
            "by rank 0",
        ] {
            assert!(msg.contains(needle), "diagnostic {msg:?} lacks {needle:?}");
        }
        // Counters tell the same story: two re-requests, one loud failure.
        assert_eq!(counters.pull_retries, 2, "{counters:?}");
        assert_eq!(counters.pull_timeouts, 1, "{counters:?}");
    })
}
