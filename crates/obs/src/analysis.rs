//! Critical-path extraction and straggler / expert-skew detection over a
//! recorded trace.
//!
//! The real engine records one `iter/{i}` span per rank per iteration
//! plus compute (`fwd`, `bwd`), comm (`pull`, `prefetch`, `cache_wait`,
//! `credit_wait`, `a2a_*`), reduce (`grad_wait`, `apply`), and sync
//! (`barrier/{epoch}`) spans. [`critical_path`] reconstructs the
//! cross-rank critical path of each iteration by walking **backwards**
//! from the iteration's end: at every instant the path sits on exactly
//! one rank, blames the innermost active span there, and — when that
//! span is a collective (same name recorded on every rank) — jumps to
//! the rank that entered the collective last, i.e. the rank actually
//! responsible for the wait. Instants covered by no span are blamed
//! `idle`. The resulting segments tile the iteration window exactly, so
//! per-category blame sums to the measured wall time by construction.
//!
//! [`detect_skew`] / [`measure_skew`] turn per-rank and per-(block,
//! expert) load distributions into a skew score with configurable
//! threshold flags — the trigger signal live expert migration needs.

use crate::trace::TraceEvent;
use serde::Serialize;
use std::collections::BTreeMap;

/// Fixed category vocabulary of the blame breakdown, in report order.
/// Every span name maps into exactly one of these via
/// [`blame_category`]; the list is closed so the artifact's structure is
/// independent of which categories a particular run happened to hit.
pub const BLAME_CATEGORIES: &[&str] = &[
    "compute",
    "a2a",
    "pull",
    "prefetch",
    "cache_wait",
    "credit_wait",
    "grad_wait",
    "apply",
    "barrier",
    "idle",
    "other",
];

/// Span-name prefixes that are collectives: the same name is recorded on
/// every participating rank, and a rank's span covers the time it spent
/// *waiting* for the others, so blame belongs to the last rank to enter.
const COLLECTIVE_PREFIXES: &[&str] = &["barrier", "a2a_", "grad_wait"];

/// Map a span (name, category) to its blame category.
pub fn blame_category(name: &str, cat: &str) -> &'static str {
    let prefixed = |p: &str| {
        name.strip_prefix(p)
            .is_some_and(|r| r.is_empty() || r.starts_with('/'))
    };
    if name.starts_with("a2a_") {
        return "a2a";
    }
    for c in &[
        "pull",
        "prefetch",
        "cache_wait",
        "credit_wait",
        "grad_wait",
        "apply",
        "barrier",
    ] {
        if prefixed(c) {
            return BLAME_CATEGORIES.iter().find(|k| *k == c).unwrap();
        }
    }
    if cat == "compute" {
        return "compute";
    }
    "other"
}

/// One maximal run of the critical path: `dur_us` on `rank` blamed on
/// `category` (span `name`, or `"idle"` for uncovered gaps).
#[derive(Debug, Clone, Serialize)]
pub struct PathSegment {
    pub rank: u32,
    pub name: String,
    pub category: String,
    pub start_us: f64,
    pub dur_us: f64,
}

/// Blame attributed to one category (µs on the critical path).
#[derive(Debug, Clone, Serialize)]
pub struct CategoryBlame {
    pub category: String,
    pub us: f64,
}

/// Blame attributed to one rank (µs the critical path spent there).
#[derive(Debug, Clone, Serialize)]
pub struct RankBlame {
    pub rank: u32,
    pub us: f64,
}

/// Critical-path blame for one iteration. `by_category` always lists
/// every entry of [`BLAME_CATEGORIES`] and `by_rank` every rank that
/// recorded an `iter` span, so the structure is run-independent.
#[derive(Debug, Clone, Serialize)]
pub struct IterationBlame {
    pub iter: u64,
    /// Iteration wall time: last `iter` span end − first start, µs.
    pub wall_us: f64,
    pub by_category: Vec<CategoryBlame>,
    pub by_rank: Vec<RankBlame>,
    /// Number of path segments (collapses under masking; kept for the
    /// human-readable table).
    pub segments: usize,
    /// The path itself, end-to-start. Excluded from serialization: its
    /// length is timing-dependent and the artifact must be structurally
    /// deterministic.
    #[serde(skip)]
    pub path: Vec<PathSegment>,
}

/// Critical-path blame across all recorded iterations.
#[derive(Debug, Clone, Serialize)]
pub struct CriticalPathReport {
    pub iterations: Vec<IterationBlame>,
    /// Sum of per-iteration wall times, µs.
    pub wall_us: f64,
    /// Aggregate per-category blame over all iterations.
    pub by_category: Vec<CategoryBlame>,
}

const EPS: f64 = 1e-9;

/// Extract the critical path of every iteration in `events` and blame
/// its wall time by category and rank. See the module docs for the
/// walk-back rules.
pub fn critical_path(events: &[TraceEvent]) -> CriticalPathReport {
    // Iteration windows from the per-rank `iter/{i}` spans.
    let mut windows: BTreeMap<u64, (f64, f64, u32, Vec<u32>)> = BTreeMap::new();
    for e in events {
        let Some(idx) = e
            .name
            .strip_prefix("iter/")
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        let w = windows
            .entry(idx)
            .or_insert((f64::MAX, f64::MIN, e.pid, Vec::new()));
        w.0 = w.0.min(e.ts_us);
        if e.end_us() > w.1 || (e.end_us() == w.1 && e.pid < w.2) {
            w.2 = e.pid;
        }
        w.1 = w.1.max(e.end_us());
        w.3.push(e.pid);
    }

    let mut iterations = Vec::new();
    for (iter, (start, end, end_rank, mut ranks)) in windows {
        ranks.sort_unstable();
        ranks.dedup();
        let path = walk_back(events, start, end, end_rank);
        iterations.push(blame_path(iter, start, end, &ranks, path));
    }

    let wall_us: f64 = iterations.iter().map(|i| i.wall_us).sum();
    let by_category = BLAME_CATEGORIES
        .iter()
        .map(|&c| CategoryBlame {
            category: c.to_string(),
            us: iterations
                .iter()
                .flat_map(|i| &i.by_category)
                .filter(|b| b.category == c)
                .map(|b| b.us)
                .sum(),
        })
        .collect();
    CriticalPathReport {
        iterations,
        wall_us,
        by_category,
    }
}

/// Walk the critical path backwards from (`end`, `end_rank`) to `start`.
fn walk_back(events: &[TraceEvent], start: f64, end: f64, end_rank: u32) -> Vec<PathSegment> {
    // Blameable spans, clipped to the window, grouped by rank. `iter`
    // and `transport` spans are excluded: the former covers the whole
    // window, the latter nests inside comm spans.
    let mut by_rank: BTreeMap<u32, Vec<(f64, f64, &TraceEvent)>> = BTreeMap::new();
    for e in events {
        if !matches!(e.cat.as_str(), "compute" | "comm" | "reduce" | "sync") {
            continue;
        }
        let (s, f) = (e.ts_us.max(start), e.end_us().min(end));
        if f - s > EPS {
            by_rank.entry(e.pid).or_default().push((s, f, e));
        }
    }
    for spans in by_rank.values_mut() {
        spans.sort_by(|a, b| a.0.total_cmp(&b.0));
    }
    let empty = Vec::new();

    let mut path = Vec::new();
    let mut rank = end_rank;
    let mut t = end;
    // Each step strictly decreases `t`; the cap is a defensive backstop.
    let mut fuel = 16 + 8 * events.len();
    while t > start + EPS && fuel > 0 {
        fuel -= 1;
        let spans = by_rank.get(&rank).unwrap_or(&empty);
        // Innermost span active just before `t`: latest start wins, then
        // shortest, then name, for a deterministic choice.
        let active = spans
            .iter()
            .filter(|(s, f, _)| *s < t - EPS && *f >= t - EPS)
            .max_by(|a, b| {
                a.0.total_cmp(&b.0)
                    .then((b.1 - b.0).total_cmp(&(a.1 - a.0)))
                    .then(b.2.name.cmp(&a.2.name))
            });
        let Some(&(s, _, ev)) = active else {
            // Gap: idle back to the latest span end (or window start).
            let prev = spans
                .iter()
                .map(|(_, f, _)| *f)
                .filter(|f| *f <= t - EPS)
                .fold(start, f64::max);
            path.push(PathSegment {
                rank,
                name: "idle".into(),
                category: "idle".into(),
                start_us: prev,
                dur_us: t - prev,
            });
            t = prev;
            continue;
        };
        let category = blame_category(&ev.name, &ev.cat);
        // Collective: jump to the last rank to enter it, if that entry
        // happened after ours and inside the remaining window.
        let is_collective = COLLECTIVE_PREFIXES.iter().any(|p| ev.name.starts_with(p));
        if is_collective {
            let blocker = by_rank
                .iter()
                .flat_map(|(r, sp)| sp.iter().map(move |x| (*r, x)))
                .filter(|(r, (bs, _, be))| {
                    *r != rank && be.name == ev.name && *bs > s + EPS && *bs < t - EPS
                })
                .max_by(|a, b| a.1 .0.total_cmp(&b.1 .0).then(b.0.cmp(&a.0)));
            if let Some((br, &(bs, _, _))) = blocker {
                path.push(PathSegment {
                    rank,
                    name: ev.name.clone(),
                    category: category.into(),
                    start_us: bs,
                    dur_us: t - bs,
                });
                t = bs;
                rank = br;
                continue;
            }
        }
        path.push(PathSegment {
            rank,
            name: ev.name.clone(),
            category: category.into(),
            start_us: s,
            dur_us: t - s,
        });
        t = s;
    }
    if t > start + EPS {
        // Fuel exhausted (malformed trace): close the window as idle so
        // the additivity invariant still holds.
        path.push(PathSegment {
            rank,
            name: "idle".into(),
            category: "idle".into(),
            start_us: start,
            dur_us: t - start,
        });
    }
    path
}

fn blame_path(
    iter: u64,
    start: f64,
    end: f64,
    ranks: &[u32],
    path: Vec<PathSegment>,
) -> IterationBlame {
    let mut by_cat: BTreeMap<&str, f64> = BTreeMap::new();
    let mut by_rank: BTreeMap<u32, f64> = ranks.iter().map(|&r| (r, 0.0)).collect();
    for seg in &path {
        *by_cat.entry(cat_key(&seg.category)).or_default() += seg.dur_us;
        *by_rank.entry(seg.rank).or_default() += seg.dur_us;
    }
    IterationBlame {
        iter,
        wall_us: end - start,
        by_category: BLAME_CATEGORIES
            .iter()
            .map(|&c| CategoryBlame {
                category: c.to_string(),
                us: by_cat.get(c).copied().unwrap_or(0.0),
            })
            .collect(),
        by_rank: by_rank
            .into_iter()
            .map(|(rank, us)| RankBlame { rank, us })
            .collect(),
        segments: path.len(),
        path,
    }
}

/// Canonicalize a segment category onto the fixed vocabulary.
fn cat_key(c: &str) -> &'static str {
    BLAME_CATEGORIES
        .iter()
        .find(|k| **k == c)
        .copied()
        .unwrap_or("other")
}

impl CriticalPathReport {
    /// Human-readable blame table (used by `repro analyze`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("critical-path blame\n");
        out.push_str(&format!(
            "  {:<12} {:>12}  {:>6}\n",
            "category", "us", "share"
        ));
        for b in &self.by_category {
            if b.us <= 0.0 {
                continue;
            }
            out.push_str(&format!(
                "  {:<12} {:>12.1}  {:>5.1}%\n",
                b.category,
                b.us,
                100.0 * b.us / self.wall_us.max(1e-12)
            ));
        }
        for it in &self.iterations {
            let on_path: f64 = it.by_category.iter().map(|b| b.us).sum();
            out.push_str(&format!(
                "  iter {:<3} wall {:>10.1}us  path {:>10.1}us  segments {}\n",
                it.iter, it.wall_us, on_path, it.segments
            ));
        }
        out
    }
}

// ---- skew detection ----

/// Thresholds for flagging a hot entry in a load distribution.
#[derive(Debug, Clone, Serialize)]
pub struct SkewConfig {
    /// Flag entries whose load exceeds `hot_ratio × mean`.
    pub hot_ratio: f64,
    /// Additionally require at least this share of the total load, so
    /// noise over a near-zero mean does not flag.
    pub min_share: f64,
}

impl Default for SkewConfig {
    fn default() -> Self {
        SkewConfig {
            hot_ratio: 2.0,
            min_share: 0.01,
        }
    }
}

/// One entry of a deterministic load distribution.
#[derive(Debug, Clone, Serialize)]
pub struct SkewItem {
    pub key: String,
    pub load: f64,
    /// `load / total`.
    pub share: f64,
    /// `load / mean`.
    pub ratio_to_mean: f64,
    pub flagged: bool,
}

/// Skew verdict over a load distribution (deterministic inputs — e.g. a
/// gate histogram — serialize unmasked).
#[derive(Debug, Clone, Serialize)]
pub struct SkewReport {
    pub items: Vec<SkewItem>,
    pub mean: f64,
    /// Max load over mean load — the skew score.
    pub max_over_mean: f64,
    /// Coefficient of variation (σ/µ).
    pub cv: f64,
    /// Keys of flagged entries, in input order.
    pub flagged: Vec<String>,
}

/// Score a load distribution and flag hot entries per `cfg`.
pub fn detect_skew(loads: &[(String, f64)], cfg: &SkewConfig) -> SkewReport {
    let n = loads.len().max(1) as f64;
    let total: f64 = loads.iter().map(|(_, v)| v).sum();
    let mean = total / n;
    let var = loads
        .iter()
        .map(|(_, v)| (v - mean) * (v - mean))
        .sum::<f64>()
        / n;
    let items: Vec<SkewItem> = loads
        .iter()
        .map(|(k, v)| {
            let share = if total > 0.0 { v / total } else { 0.0 };
            let ratio = if mean > 0.0 { v / mean } else { 0.0 };
            SkewItem {
                key: k.clone(),
                load: *v,
                share,
                ratio_to_mean: ratio,
                flagged: ratio > cfg.hot_ratio && share >= cfg.min_share,
            }
        })
        .collect();
    SkewReport {
        mean,
        max_over_mean: items.iter().map(|i| i.ratio_to_mean).fold(0.0, f64::max),
        cv: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
        flagged: items
            .iter()
            .filter(|i| i.flagged)
            .map(|i| i.key.clone())
            .collect(),
        items,
    }
}

/// One entry of a *measured* (wall-clock) load distribution. Field
/// names are distinct from [`SkewItem`]'s because the lab masks JSON
/// keys document-wide: these values are timing-dependent and masked,
/// while deterministic [`SkewReport`]s in the same artifact are not.
#[derive(Debug, Clone, Serialize)]
pub struct MeasuredLoad {
    pub key: String,
    pub load_us: f64,
    pub ratio_q: f64,
    pub hot: bool,
}

/// Skew verdict over measured loads (masked fields only).
#[derive(Debug, Clone, Serialize)]
pub struct MeasuredSkewReport {
    pub entries: Vec<MeasuredLoad>,
    /// Max over mean — masked skew score.
    pub imbalance_q: f64,
}

/// [`detect_skew`] for wall-clock loads, reported with masked keys.
pub fn measure_skew(loads: &[(String, f64)], cfg: &SkewConfig) -> MeasuredSkewReport {
    let r = detect_skew(loads, cfg);
    MeasuredSkewReport {
        entries: r
            .items
            .into_iter()
            .map(|i| MeasuredLoad {
                key: i.key,
                load_us: i.load,
                ratio_q: i.ratio_to_mean,
                hot: i.flagged,
            })
            .collect(),
        imbalance_q: r.max_over_mean,
    }
}

/// Per-rank compute load (µs of `compute` spans), keyed `r{rank}`.
pub fn rank_compute_loads(events: &[TraceEvent]) -> Vec<(String, f64)> {
    let mut acc: BTreeMap<u32, f64> = BTreeMap::new();
    for e in events {
        if e.cat == "compute" {
            *acc.entry(e.pid).or_default() += e.dur_us;
        }
    }
    acc.into_iter().map(|(r, v)| (format!("r{r}"), v)).collect()
}

/// Per-(block, expert) compute load (µs of `fwd`/`bwd` spans summed
/// across ranks), keyed `b{block}/e{expert}`.
pub fn expert_compute_loads(events: &[TraceEvent]) -> Vec<(String, f64)> {
    let mut acc: BTreeMap<(u32, u32), f64> = BTreeMap::new();
    for e in events {
        let mut parts = e.name.split('/');
        if !matches!(parts.next(), Some("fwd" | "bwd")) {
            continue;
        }
        let (Some(b), Some(ex)) = (parts.next(), parts.next()) else {
            continue;
        };
        let (Some(b), Some(ex)) = (
            b.strip_prefix('b').and_then(|s| s.parse::<u32>().ok()),
            ex.strip_prefix('e').and_then(|s| s.parse::<u32>().ok()),
        ) else {
            continue;
        };
        *acc.entry((b, ex)).or_default() += e.dur_us;
    }
    acc.into_iter()
        .map(|((b, e), v)| (format!("b{b}/e{e}"), v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, cat: &str, pid: u32, ts: f64, dur: f64) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            cat: cat.into(),
            pid,
            tid: "t".into(),
            ts_us: ts,
            dur_us: dur,
        }
    }

    fn sum_cats(it: &IterationBlame) -> f64 {
        it.by_category.iter().map(|b| b.us).sum()
    }

    fn cat(it: &IterationBlame, c: &str) -> f64 {
        it.by_category.iter().find(|b| b.category == c).unwrap().us
    }

    #[test]
    fn blame_tiles_the_window_exactly() {
        // Single rank: compute [0,10), pull [10,30), gap [30,40),
        // compute [40,100).
        let events = vec![
            ev("iter/0", "iter", 0, 0.0, 100.0),
            ev("fwd/b0/e0", "compute", 0, 0.0, 10.0),
            ev("pull/b0/e1", "comm", 0, 10.0, 20.0),
            ev("bwd/b0/e0", "compute", 0, 40.0, 60.0),
        ];
        let r = critical_path(&events);
        assert_eq!(r.iterations.len(), 1);
        let it = &r.iterations[0];
        assert!((it.wall_us - 100.0).abs() < 1e-6);
        assert!((sum_cats(it) - it.wall_us).abs() < 1e-6);
        assert!((cat(it, "compute") - 70.0).abs() < 1e-6);
        assert!((cat(it, "pull") - 20.0).abs() < 1e-6);
        assert!((cat(it, "idle") - 10.0).abs() < 1e-6);
    }

    #[test]
    fn barrier_jumps_to_the_blocking_rank() {
        // Rank 0 computes 10us then waits at the barrier until rank 1,
        // which computes 49us, arrives. The path must charge the wait to
        // rank 1's compute, leaving only the 1us rendezvous as barrier.
        let events = vec![
            ev("iter/0", "iter", 0, 0.0, 100.0),
            ev("iter/0", "iter", 1, 0.0, 100.0),
            ev("fwd/b0/e0", "compute", 0, 0.0, 10.0),
            ev("barrier/0", "sync", 0, 10.0, 40.0),
            ev("fwd/b0/e2", "compute", 0, 50.0, 50.0),
            ev("fwd/b0/e1", "compute", 1, 0.0, 49.0),
            ev("barrier/0", "sync", 1, 49.0, 1.0),
            ev("fwd/b0/e3", "compute", 1, 50.0, 50.0),
        ];
        let r = critical_path(&events);
        let it = &r.iterations[0];
        assert!((sum_cats(it) - 100.0).abs() < 1e-6);
        assert!((cat(it, "compute") - 99.0).abs() < 1e-6);
        assert!((cat(it, "barrier") - 1.0).abs() < 1e-6);
        let r0 = it.by_rank.iter().find(|b| b.rank == 0).unwrap().us;
        let r1 = it.by_rank.iter().find(|b| b.rank == 1).unwrap().us;
        assert!((r0 - 51.0).abs() < 1e-6);
        assert!((r1 - 49.0).abs() < 1e-6);
    }

    #[test]
    fn path_bounds_hold() {
        let events = vec![
            ev("iter/0", "iter", 0, 0.0, 60.0),
            ev("iter/0", "iter", 1, 0.0, 60.0),
            ev("fwd/b0/e0", "compute", 0, 0.0, 30.0),
            ev("a2a_dispatch/b0", "comm", 0, 30.0, 30.0),
            ev("fwd/b0/e1", "compute", 1, 0.0, 55.0),
            ev("a2a_dispatch/b0", "comm", 1, 55.0, 5.0),
        ];
        let r = critical_path(&events);
        let it = &r.iterations[0];
        let longest = 55.0;
        assert!(sum_cats(it) >= longest - 1e-6);
        let total_durs: f64 = events.iter().skip(2).map(|e| e.dur_us).sum();
        assert!(sum_cats(it) <= total_durs + 1e-6);
    }

    #[test]
    fn zipf_flags_hot_expert_uniform_stays_silent() {
        let zipf: Vec<(String, f64)> = (0..8)
            .map(|e| (format!("e{e}"), 1000.0 / ((e + 1) as f64).powf(1.2)))
            .collect();
        let uniform: Vec<(String, f64)> = (0..8).map(|e| (format!("e{e}"), 125.0)).collect();
        let cfg = SkewConfig::default();
        let hot = detect_skew(&zipf, &cfg);
        assert!(hot.flagged.contains(&"e0".to_string()), "{:?}", hot.flagged);
        assert!(hot.max_over_mean > cfg.hot_ratio);
        let flat = detect_skew(&uniform, &cfg);
        assert!(flat.flagged.is_empty());
        assert!((flat.max_over_mean - 1.0).abs() < 1e-9);
        assert!(flat.cv < 1e-9);
    }

    #[test]
    fn load_extractors_key_by_rank_and_expert() {
        let events = vec![
            ev("fwd/b0/e0", "compute", 0, 0.0, 10.0),
            ev("bwd/b0/e0", "compute", 1, 0.0, 5.0),
            ev("fwd/b1/e3", "compute", 1, 20.0, 7.0),
            ev("pull/b0/e0", "comm", 0, 0.0, 99.0),
        ];
        let ranks = rank_compute_loads(&events);
        assert_eq!(ranks, vec![("r0".into(), 10.0), ("r1".into(), 12.0)]);
        let experts = expert_compute_loads(&events);
        assert_eq!(experts, vec![("b0/e0".into(), 15.0), ("b1/e3".into(), 7.0)]);
    }
}
