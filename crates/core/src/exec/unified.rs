//! The unified numerical engine: one iteration, per-block paradigms.
//!
//! Janus's core claim (§4) is that the paradigm is a *per-block* choice:
//! a PR-MoE-style model whose blocks differ in expert count can run some
//! blocks expert-centric and others data-centric in the same iteration.
//! This engine executes a compiled [`IterationPlan`] — the single source
//! of truth for that choice — by dispatching each block to the same
//! per-block routines the pure engines use, threading the residual
//! stream across paradigm boundaries.
//!
//! Liveness across paradigms: a worker inside an expert-centric block's
//! All-to-All keeps serving data-centric pull requests and gradient
//! pushes through the collective's service callback, and every
//! data-centric wait (cache, inbox, barrier) already services the
//! protocol — so a fast worker can never deafen a slow one, whichever
//! paradigm either is currently executing.
//!
//! Numerics: both per-block routines produce bitwise identical outputs
//! and fold gradients in bitwise identical order, so a unified run equals
//! both pure runs bit for bit (asserted in `trainer` and the proptests).

use crate::exec::data_centric::{self, BlockTapeDc, DcRuntime, MachineShared};
use crate::exec::expert_centric::{self, BlockTapeEc, IterOutput};
use crate::exec::model::{loss_and_grad, WorkerState};
use crate::exec::obs;
use crate::paradigm::Paradigm;
use crate::plan::IterationPlan;
use janus_comm::{Comm, CommError, Transport};
use janus_moe::expert::ExpertGrads;

/// Forward bookkeeping of one block, tagged by the paradigm that ran it.
enum BlockTape {
    Ec(BlockTapeEc),
    Dc(BlockTapeDc),
}

/// Run one unified training iteration following `plan`.
///
/// The plan must be compiled (once, by [`IterationPlan::compile`]) for
/// the same model and cluster shape as `state.cfg` — the engine never
/// recomputes paradigms or pull orders itself.
pub fn run_iteration<T: Transport>(
    comm: &Comm<T>,
    state: &mut WorkerState,
    shared: &MachineShared,
    plan: &IterationPlan,
    iter: u64,
) -> Result<IterOutput, CommError> {
    let cfg = state.cfg.clone();
    assert_eq!(
        plan.blocks.len(),
        cfg.blocks,
        "plan compiled for a different model"
    );
    assert_eq!(
        (plan.machines, plan.gpus_per_machine),
        (cfg.machines, cfg.gpus_per_machine),
        "plan compiled for a different cluster shape"
    );
    let rt = DcRuntime::new(comm, state, shared);
    let iter_span = obs::span(state.rank, "iter", || {
        (format!("iter/{iter}"), "iter".to_string())
    });

    let mut x = state.inputs.clone();
    let mut tapes: Vec<BlockTape> = Vec::with_capacity(cfg.blocks);

    // ---- Forward ----
    for b in 0..cfg.blocks {
        let (y, tape) = match plan.blocks[b].paradigm {
            Paradigm::ExpertCentric => {
                let (y, tape) =
                    expert_centric::forward_block(comm, state, b, iter, &x, &mut |from, m| {
                        rt.service(from, m)
                    })?;
                (y, BlockTape::Ec(tape))
            }
            Paradigm::DataCentric => {
                let (y, tape) = data_centric::forward_block(&rt, state, b, &x)?;
                (y, BlockTape::Dc(tape))
            }
        };
        tapes.push(tape);
        x = y;
    }

    let (loss, mut dy) = loss_and_grad(&x);
    let output = x;

    // ---- Backward ----
    // Expert-centric blocks fold their owners' gradients locally (bitwise
    // the data-centric fold); data-centric blocks route theirs through
    // the gradient protocol into the owner's inbox.
    let mut ec_grads: Vec<Option<Vec<ExpertGrads>>> = (0..cfg.blocks).map(|_| None).collect();
    for b in (0..cfg.blocks).rev() {
        dy = match &tapes[b] {
            BlockTape::Ec(tape) => {
                let (dx, grads) = expert_centric::backward_block(
                    comm,
                    state,
                    b,
                    iter,
                    tape,
                    &dy,
                    &mut |from, m| rt.service(from, m),
                )?;
                ec_grads[b] = Some(grads);
                dx
            }
            BlockTape::Dc(tape) => data_centric::backward_block(&rt, state, b, tape, &dy)?,
        };
    }

    // ---- Update ----
    let dc_blocks: Vec<usize> = plan
        .blocks
        .iter()
        .filter(|bp| bp.paradigm == Paradigm::DataCentric)
        .map(|bp| bp.block)
        .collect();
    data_centric::wait_and_apply_updates(&rt, state, &dc_blocks)?;
    for (b, grads) in ec_grads.into_iter().enumerate() {
        if let Some(grads) = grads {
            for (local, g) in grads.iter().enumerate() {
                state.experts[b][local].apply(g, cfg.lr);
            }
        }
    }
    rt.refresh_serving(state);
    data_centric::finish_iteration(&rt, state, iter)?;
    state.comm.record_transport(comm.transport().stats());
    state
        .comm
        .record_cache(shared.cache.stats(), shared.grads.prefolds());
    drop(iter_span);
    Ok(IterOutput { output, loss })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::model::ExecConfig;
    use crate::plan::PlanOpts;
    use janus_comm::runtime::run_workers;

    #[test]
    fn mixed_plan_iteration_runs_and_loss_decreases() {
        let cfg = ExecConfig::mixed_paradigms();
        let plan = cfg.compile_plan(&PlanOpts::default());
        let paradigms = plan.paradigms();
        assert!(
            paradigms.contains(&Paradigm::ExpertCentric)
                && paradigms.contains(&Paradigm::DataCentric),
            "config must exercise both paradigms, got {paradigms:?}"
        );
        let shared = MachineShared::for_cluster(&cfg);
        let losses = run_workers(cfg.world(), |comm| {
            let mut state = WorkerState::init(&cfg, comm.rank());
            let sh = &shared[cfg.machine_of(comm.rank())];
            (0..3)
                .map(|i| run_iteration(&comm, &mut state, sh, &plan, i).unwrap().loss)
                .collect::<Vec<_>>()
        });
        for per_worker in losses {
            assert!(per_worker.iter().all(|l| l.is_finite()));
            assert!(
                per_worker.last().unwrap() < per_worker.first().unwrap(),
                "loss did not decrease: {per_worker:?}"
            );
        }
    }

    #[test]
    fn all_ec_plan_matches_pure_engine_bitwise() {
        let cfg = ExecConfig::small();
        let opts = PlanOpts {
            policy: crate::paradigm::ParadigmPolicy::ExpertCentric,
            ..PlanOpts::default()
        };
        let plan = cfg.compile_plan(&opts);
        let shared = MachineShared::for_cluster(&cfg);
        let unified = run_workers(cfg.world(), |comm| {
            let mut state = WorkerState::init(&cfg, comm.rank());
            let sh = &shared[cfg.machine_of(comm.rank())];
            let out = run_iteration(&comm, &mut state, sh, &plan, 0).unwrap();
            (out.output, state.experts)
        });
        let pure = run_workers(cfg.world(), |comm| {
            let mut state = WorkerState::init(&cfg, comm.rank());
            let out = expert_centric::run_iteration(&comm, &mut state, 0).unwrap();
            (out.output, state.experts)
        });
        for ((uo, ue), (po, pe)) in unified.iter().zip(&pure) {
            assert_eq!(uo.max_abs_diff(po), 0.0);
            assert_eq!(ue, pe);
        }
    }
}
