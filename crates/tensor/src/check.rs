//! Finite-difference gradient checking, shared by this crate's tests and
//! the FFN/gate tests in `janus-moe`.

use crate::matrix::Matrix;

/// Central finite-difference gradient of a scalar loss with respect to
/// every entry of `x`.
pub fn numeric_grad(x: &Matrix, loss: impl Fn(&Matrix) -> f32) -> Matrix {
    let eps = 1e-3f32;
    let mut grad = Matrix::zeros(x.rows(), x.cols());
    for i in 0..x.rows() * x.cols() {
        let mut plus = x.clone();
        plus.data_mut()[i] += eps;
        let mut minus = x.clone();
        minus.data_mut()[i] -= eps;
        grad.data_mut()[i] = (loss(&plus) - loss(&minus)) / (2.0 * eps);
    }
    grad
}

/// Relative error between an analytic and a numeric gradient, normalized
/// by the larger norm (robust when both are tiny).
pub fn grad_rel_error(analytic: &Matrix, numeric: &Matrix) -> f32 {
    let diff = analytic.sub(numeric).norm();
    let scale = analytic.norm().max(numeric.norm()).max(1e-8);
    diff / scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_grad_of_quadratic_is_linear() {
        // loss = sum(x^2) → grad = 2x
        let x = Matrix::from_rows(&[&[1.0, -2.0, 0.5]]);
        let g = numeric_grad(&x, |m| m.data().iter().map(|v| v * v).sum());
        let expected = x.map(|v| 2.0 * v);
        assert!(g.max_abs_diff(&expected) < 1e-2);
    }

    #[test]
    fn rel_error_zero_for_identical() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        assert!(grad_rel_error(&a, &a) < 1e-9);
    }

    #[test]
    fn rel_error_large_for_disagreement() {
        let a = Matrix::from_rows(&[&[1.0, 0.0]]);
        let b = Matrix::from_rows(&[&[0.0, 1.0]]);
        assert!(grad_rel_error(&a, &b) > 1.0);
    }
}
