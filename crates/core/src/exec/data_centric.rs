//! Numerical data-centric training iteration (the Janus paradigm).
//!
//! Tokens never leave their worker. Per block, each worker computes every
//! expert over its own routed slots, fetching non-resident expert weights
//! through the Janus Task Queue machinery:
//!
//! * the per-machine [`CacheManager`] deduplicates cross-machine fetches
//!   (each external expert crosses the fabric once per machine, §5.1.2);
//! * a designated local worker fetches each external expert for its
//!   machine and inserts it into the shared cache; siblings block on the
//!   cache's condition variable — woken the instant the insert lands —
//!   while staying responsive to pull requests through a bounded-backoff
//!   service pass (asynchronous communication, §5.1.1);
//! * internal experts are pulled directly from their local owner;
//! * backward gradients of external experts are pre-reduced by a
//!   designated local aggregator through [`GradAccumulator`] before one
//!   message per (machine, expert) returns to the owner; internal
//!   gradients go straight to the owner;
//! * owners update weights only after every worker's contribution landed,
//!   then the cache is invalidated — so no stale weights can leak across
//!   iterations and the computation is equivalent to the All-to-All
//!   baseline (paper §3.2).
//!
//! The per-block bodies ([`forward_block`], [`backward_block`]) and the
//! update/teardown steps are the reusable units the unified engine
//! dispatches to; [`run_iteration`] composes them for a pure data-centric
//! run.

use crate::exec::expert_centric::IterOutput;
use crate::exec::model::{
    loss_and_grad, CommCounters, ExecConfig, GradInbox, PullRetryPolicy, WorkerState,
};
use crate::exec::obs;
use crate::exec::weights::{expert_from_bytes, expert_to_bytes, grads_from_bytes, grads_to_bytes};
use crate::placement::Placement;
use crate::queue::{CacheManager, CreditBuffer, GradAccumulator};
use janus_comm::{Comm, CommError, Message, Transport};
use janus_moe::expert::{ExpertFfn, ExpertGrads};
use janus_tensor::{pool, Matrix};
use std::cell::RefCell;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bounded backoff for waits that must keep servicing the protocol: start
/// small to catch imminent events, double up to a cap so an idle worker
/// never spins and never oversleeps a peer's request by more than the cap.
const BACKOFF_MIN: Duration = Duration::from_micros(10);
const BACKOFF_MAX: Duration = Duration::from_micros(200);

fn backoff_next(d: Duration) -> Duration {
    (d * 2).min(BACKOFF_MAX)
}

/// State shared by the workers of one machine: the Inter-Node Scheduler's
/// cache and gradient pre-reduction accumulator.
pub struct MachineShared {
    /// Expert cache, keyed by `(block, expert)`.
    pub cache: CacheManager<ExpertFfn>,
    /// Gradient pre-reduction, expecting one contribution per local GPU.
    pub grads: GradAccumulator<ExpertGrads>,
}

impl MachineShared {
    /// Shared state for a machine with `gpus` contributing workers.
    pub fn new(gpus: usize) -> Self {
        MachineShared {
            cache: CacheManager::new(),
            grads: GradAccumulator::new(gpus),
        }
    }

    /// Build one shared state per machine.
    pub fn for_cluster(cfg: &ExecConfig) -> Vec<Arc<MachineShared>> {
        (0..cfg.machines)
            .map(|_| Arc::new(MachineShared::new(cfg.gpus_per_machine)))
            .collect()
    }

    /// Build one shared state per machine under an elastic placement:
    /// the gradient pre-reduction expects one contribution per *live*
    /// local worker (a machine with no live workers gets a placeholder
    /// that nothing will ever touch).
    pub fn for_cluster_placed(cfg: &ExecConfig, placement: &Placement) -> Vec<Arc<MachineShared>> {
        (0..cfg.machines)
            .map(|m| {
                let live = placement.live_locals(m, cfg.gpus_per_machine).len();
                Arc::new(MachineShared::new(live.max(1)))
            })
            .collect()
    }
}

/// The data-centric protocol endpoint of one worker: serves pull requests
/// and gradient pushes, pulls experts, and waits on shared state without
/// going deaf to peers. Holds no borrow of [`WorkerState`], so per-block
/// routines can take the state mutably alongside it.
pub(crate) struct DcRuntime<'a, T: Transport> {
    comm: &'a Comm<T>,
    cfg: ExecConfig,
    rank: usize,
    machine: usize,
    /// Elastic expert placement the iteration executes under.
    placement: Arc<Placement>,
    shared: &'a MachineShared,
    /// Snapshot of owned expert weights served to peers. Stable during
    /// the iteration (updates land only at the end) and refreshed right
    /// after the update, because peers that already passed the
    /// end-of-iteration barriers pull next-iteration weights while this
    /// worker is still draining its own barrier.
    serving: RefCell<Vec<Vec<ExpertFfn>>>,
    /// Persistent inbox of gradient contributions for owned experts
    /// (outlives the iteration; see [`GradInbox`]).
    owner_grads: Arc<GradInbox>,
    /// Deadline/retry policy for pulls (from [`WorkerState::pull_retry`]).
    retry: PullRetryPolicy,
    /// Ceiling on any blocking wait (from [`WorkerState::wait_budget`]).
    wait_budget: Duration,
    /// Reliability counters shared with the worker.
    counters: Arc<CommCounters>,
}

impl<'a, T: Transport> DcRuntime<'a, T> {
    /// A runtime serving `state`'s current weights.
    pub(crate) fn new(comm: &'a Comm<T>, state: &WorkerState, shared: &'a MachineShared) -> Self {
        DcRuntime {
            comm,
            cfg: state.cfg.clone(),
            rank: state.rank,
            machine: state.cfg.machine_of(state.rank),
            placement: state.placement.clone(),
            shared,
            serving: RefCell::new(state.experts.clone()),
            owner_grads: state.grads_inbox.clone(),
            retry: state.pull_retry,
            wait_budget: state.wait_budget,
            counters: state.comm.clone(),
        }
    }

    /// Handle one protocol message if it belongs to this engine.
    /// Returns false for messages some other wait loop should claim.
    pub(crate) fn service(&self, from: usize, msg: &Message) -> bool {
        match msg {
            Message::PullRequest {
                block,
                expert,
                nonce,
            } => {
                let (b, e) = (*block as usize, *expert as usize);
                assert_eq!(
                    self.placement.owner_of(b, e),
                    self.rank,
                    "pull request routed to non-owner"
                );
                let local = self.placement.local_index(b, e);
                let data = expert_to_bytes(&self.serving.borrow()[b][local]);
                if self.cfg.machine_of(from) != self.machine {
                    self.counters.add_remote_bytes(data.len() as u64);
                }
                self.comm
                    .send(
                        from,
                        Message::ExpertPayload {
                            block: *block,
                            expert: *expert,
                            nonce: *nonce,
                            data,
                        },
                    )
                    .expect("serving an expert payload");
                true
            }
            Message::ExpertPayload { .. } => {
                // A live pull claims its payload by nonce through its own
                // predicate before the service path ever sees it, so any
                // payload reaching here is the stale answer to an attempt
                // that already missed its deadline: discard it.
                true
            }
            Message::GradPush {
                block,
                expert,
                contributions,
                data,
            } => {
                let (b, e) = (*block as usize, *expert as usize);
                let grad = grads_from_bytes(data.clone()).expect("decode gradient");
                if self.placement.owner_of(b, e) == self.rank {
                    self.add_owner_grad(b, e, from, grad, *contributions);
                } else {
                    debug_assert_eq!(
                        self.placement
                            .designated_local(self.machine, e, self.cfg.gpus_per_machine),
                        self.rank,
                        "gradient push routed to non-aggregator"
                    );
                    self.aggregate_external(b, e, from, grad, *contributions);
                }
                true
            }
            _ => false,
        }
    }

    fn add_owner_grad(
        &self,
        b: usize,
        e: usize,
        sender: usize,
        grad: ExpertGrads,
        contributions: u32,
    ) {
        self.owner_grads.push((b, e), sender, grad, contributions);
    }

    /// Fold a local contribution into the machine's pre-reduction; ship
    /// the pre-reduced gradient to the owner once all local workers have
    /// contributed.
    fn aggregate_external(
        &self,
        b: usize,
        e: usize,
        sender: usize,
        grad: ExpertGrads,
        contributions: u32,
    ) {
        debug_assert_eq!(contributions, 1, "aggregators receive raw contributions");
        if let Some((reduced, n)) = self
            .shared
            .grads
            .add((b, e), sender, grad, |acc, g| acc.accumulate(&g))
        {
            // The per-machine NIC flow of the pre-reduced gradient — the
            // real counterpart of the simulator's `grad-ext` transfer,
            // machine-scoped in the drift report.
            let _span = obs::span(self.rank, "comm", || {
                (format!("grad_ext/b{b}/e{e}"), format!("b{b}"))
            });
            let owner = self.placement.owner_of(b, e);
            let data = grads_to_bytes(&reduced);
            if self.cfg.machine_of(owner) != self.machine {
                self.counters.add_remote_bytes(data.len() as u64);
            }
            self.comm
                .send(
                    owner,
                    Message::GradPush {
                        block: b as u32,
                        expert: e as u32,
                        contributions: n as u32,
                        data,
                    },
                )
                .expect("shipping pre-reduced gradient");
        }
    }

    /// Fetch one expert from its (remote) owner, serving the protocol
    /// while waiting. Each attempt carries a fresh nonce and a deadline:
    /// a pull that misses its deadline is re-requested (a stale payload
    /// from the earlier attempt can never satisfy the new one), and when
    /// the attempt budget runs out the iteration fails loudly with a
    /// diagnostic naming the block, expert, and peer instead of hanging.
    fn pull_expert(&self, b: usize, e: usize) -> Result<ExpertFfn, CommError> {
        let span = obs::span(self.rank, "comm", || {
            (format!("pull/b{b}/e{e}"), format!("b{b}"))
        });
        let result = self.pull_expert_inner(b, e);
        if result.is_ok() {
            obs::end_into(span, "janus_pull_latency_us");
        }
        result
    }

    fn pull_expert_inner(&self, b: usize, e: usize) -> Result<ExpertFfn, CommError> {
        let owner = self.placement.owner_of(b, e);
        debug_assert_ne!(owner, self.rank);
        let start = Instant::now();
        let attempts = self.retry.max_attempts.max(1);
        for attempt in 1..=attempts {
            let nonce = self.counters.next_nonce();
            self.comm.send(
                owner,
                Message::PullRequest {
                    block: b as u32,
                    expert: e as u32,
                    nonce,
                },
            )?;
            let got = self.comm.recv_match_or_consume_deadline(
                |_, m| {
                    matches!(m, Message::ExpertPayload { block, expert, nonce: n, .. }
                        if *block == b as u32 && *expert == e as u32 && *n == nonce)
                },
                |from, m| self.service(from, m),
                Instant::now() + self.retry.deadline,
            )?;
            match got {
                Some((_, Message::ExpertPayload { data, .. })) => return expert_from_bytes(data),
                Some(_) => unreachable!("predicate admits only the payload"),
                None if attempt < attempts => self.counters.record_pull_retry(),
                None => {}
            }
        }
        self.counters.record_pull_timeout();
        Err(CommError::Timeout {
            context: format!(
                "data-centric pull of expert {e} (block {b}) from peer rank {owner} by rank {}",
                self.rank
            ),
            attempts,
            elapsed: start.elapsed(),
        })
    }

    /// Wait for a cache entry inserted by a sibling's fetch. Event-driven:
    /// blocks on the cache's condition variable — woken the moment the
    /// insert lands — with a bounded backoff so the worker still surfaces
    /// periodically to serve protocol traffic addressed to it.
    fn wait_cached(&self, b: usize, e: usize) -> Result<Arc<ExpertFfn>, CommError> {
        let span = obs::span(self.rank, "comm", || {
            (format!("cache_wait/b{b}/e{e}"), format!("b{b}"))
        });
        let result = self.wait_cached_inner(b, e);
        obs::end_into(span, "janus_cache_wait_us");
        result
    }

    fn wait_cached_inner(&self, b: usize, e: usize) -> Result<Arc<ExpertFfn>, CommError> {
        let start = Instant::now();
        let mut backoff = BACKOFF_MIN;
        loop {
            if let Some(v) = self.shared.cache.wait_for((b, e), backoff) {
                return Ok(v);
            }
            if start.elapsed() > self.wait_budget {
                let fetcher =
                    self.placement
                        .designated_local(self.machine, e, self.cfg.gpus_per_machine);
                return Err(CommError::Timeout {
                    context: format!(
                        "cache wait for expert {e} (block {b}) by rank {}: designated \
                         fetcher rank {fetcher} never inserted it",
                        self.rank
                    ),
                    attempts: 1,
                    elapsed: start.elapsed(),
                });
            }
            let handled = self.comm.service_pass(|from, m| self.service(from, m))?;
            backoff = if handled == 0 {
                backoff_next(backoff)
            } else {
                BACKOFF_MIN
            };
        }
    }

    /// Barrier among the live ranks that keeps serving while waiting.
    pub(crate) fn barrier(&self, epoch: u64) -> Result<(), CommError> {
        let _span = obs::span(self.rank, "sync", || {
            (format!("barrier/{epoch}"), "sync".to_string())
        });
        let world = self.cfg.world();
        for peer in 0..world {
            if peer != self.rank && self.placement.is_live(peer) {
                self.comm.send(peer, Message::Barrier { epoch })?;
            }
        }
        let expected = self.placement.live_count().saturating_sub(1);
        let mut seen = vec![false; world];
        for _ in 0..expected {
            let (from, _) = self.comm.recv_match_or_consume(
                |from, m| matches!(m, Message::Barrier { epoch: e } if *e == epoch) && !seen[from],
                |from, m| self.service(from, m),
            )?;
            seen[from] = true;
        }
        Ok(())
    }

    /// Refresh the served snapshot to `state`'s current (just-updated)
    /// weights: any pull arriving from here on is a next-iteration request
    /// from a peer that already passed the end-of-iteration barriers, and
    /// must see the new weights.
    pub(crate) fn refresh_serving(&self, state: &WorkerState) {
        self.serving.replace(state.experts.clone());
    }
}

/// Per-block forward bookkeeping: for every expert, the fetched/local
/// weights and the token slots `(token, weight)` it processed. The
/// activation tape itself (inputs, pre-activations, hidden) lives in the
/// expert's [`WorkerState::scratch`] slot, held there between forward
/// and backward so the pass stays allocation-free.
pub(crate) struct BlockTapeDc {
    per_expert: Vec<ExpertAssignment>,
}

/// An expert's fetched/local weights plus its `(token, weight)` slots.
type ExpertAssignment = (Arc<ExpertFfn>, Vec<(usize, f32)>);

/// Data-centric forward for one block: hierarchical fetch, per-expert
/// compute over this worker's own tokens, combine on the residual stream.
pub(crate) fn forward_block<T: Transport>(
    rt: &DcRuntime<'_, T>,
    state: &WorkerState,
    b: usize,
    x: &Matrix,
) -> Result<(Matrix, BlockTapeDc), CommError> {
    let cfg = &state.cfg;
    let rank = state.rank;
    let machine = cfg.machine_of(rank);
    let placement = &state.placement;
    let experts = cfg.experts_in(b);
    let routing = state.gates[b].route(x);

    // Fetch this worker's designated share of the machine's external
    // experts into the shared cache (the Inter-Node Scheduler's
    // hierarchical fetch).
    for e in 0..experts {
        let owner = placement.owner_of(b, e);
        if cfg.machine_of(owner) != machine
            && placement.designated_local(machine, e, cfg.gpus_per_machine) == rank
        {
            let span = obs::span(rank, "comm", || {
                (format!("prefetch/b{b}/e{e}"), format!("b{b}"))
            });
            let weights = rt.pull_expert(b, e)?;
            rt.shared.cache.insert((b, e), weights);
            obs::end_into(span, "janus_prefetch_us");
        }
    }

    // Credit-based buffer (§5.1.1): every non-resident expert acquisition
    // takes one credit, bounding the in-flight fetched experts the block
    // holds at once. Credits are released only after the parallel compute
    // consumed the weights; the time spent waiting on a credit is what
    // the recorder surfaces as `janus_credit_wait_us`.
    let non_own = (0..experts)
        .filter(|&e| placement.owner_of(b, e) != rank)
        .count();
    let credits = CreditBuffer::new(non_own.max(1) as u32);
    let mut credit_guards = Vec::with_capacity(non_own);

    // Acquire every expert's weights sequentially — acquisition talks
    // the pull protocol, which must stay on this worker's thread.
    let mut per_expert = Vec::with_capacity(experts);
    for e in 0..experts {
        let owner = placement.owner_of(b, e);
        let weights: Arc<ExpertFfn> = if owner == rank {
            Arc::new(state.owned(b, e).clone())
        } else {
            let span = obs::span(rank, "comm", || {
                (format!("credit_wait/b{b}/e{e}"), format!("b{b}"))
            });
            credit_guards.push(credits.acquire(1));
            obs::end_into(span, "janus_credit_wait_us");
            if cfg.machine_of(owner) == machine {
                // Internal expert: pull directly from the local owner.
                Arc::new(rt.pull_expert(b, e)?)
            } else {
                rt.wait_cached(b, e)?
            }
        };
        per_expert.push((weights, routing.tokens_for(e)));
    }
    drop(routing);

    // Per-expert forward passes are independent: run them as parallel
    // tasks, each locking only its own scratch slot.
    {
        let per_expert = &per_expert;
        pool::run_tasks(experts, |e| {
            let _span = obs::span(rank, "compute", || {
                (format!("fwd/b{b}/e{e}"), format!("b{b}"))
            });
            let (weights, slots) = &per_expert[e];
            let idx: Vec<usize> = slots.iter().map(|(t, _)| *t).collect();
            let mut s = state.scratch_slot(b, e).lock();
            x.gather_rows_into(&idx, &mut s.x);
            weights.forward_scratch(&mut s);
        });
    }
    drop(credit_guards);

    // Combine in expert-ascending order — the same accumulation order
    // as the expert-centric combine, and independent of how the
    // parallel tasks were scheduled.
    let mut y = x.clone();
    for (e, (_, slots)) in per_expert.iter().enumerate() {
        let s = state.scratch_slot(b, e).lock();
        let idx: Vec<usize> = slots.iter().map(|(t, _)| *t).collect();
        let ws: Vec<f32> = slots.iter().map(|(_, w)| *w).collect();
        y.scatter_add_rows(&idx, &ws, &s.y);
    }
    Ok((y, BlockTapeDc { per_expert }))
}

/// Data-centric backward for one block: per-expert backward against the
/// recorded tape, combine input gradients, route weight gradients.
pub(crate) fn backward_block<T: Transport>(
    rt: &DcRuntime<'_, T>,
    state: &WorkerState,
    b: usize,
    tape: &BlockTapeDc,
    dy: &Matrix,
) -> Result<Matrix, CommError> {
    let cfg = &state.cfg;
    let rank = state.rank;
    let machine = cfg.machine_of(rank);

    // Per-expert backward passes in parallel, against the activation
    // tape each scratch slot recorded during forward.
    {
        let per_expert = &tape.per_expert;
        pool::run_tasks(per_expert.len(), |e| {
            let _span = obs::span(rank, "compute", || {
                (format!("bwd/b{b}/e{e}"), format!("b{b}"))
            });
            let (weights, slots) = &per_expert[e];
            let idx: Vec<usize> = slots.iter().map(|(t, _)| *t).collect();
            let mut s = state.scratch_slot(b, e).lock();
            // dY for this expert's slots: w · dy[token]. Staged through
            // the slot's `dy` buffer (taken out so the pass can borrow
            // the scratch mutably).
            let mut dy_e = std::mem::take(&mut s.dy);
            dy.gather_rows_into(&idx, &mut dy_e);
            for (row, (_, w)) in (0..dy_e.rows()).zip(slots.iter()) {
                for v in dy_e.row_mut(row) {
                    *v *= *w;
                }
            }
            weights.backward_scratch(&dy_e, &mut s);
            s.dy = dy_e;
        });
    }

    // Combine input gradients and route weight gradients, experts
    // ascending — deterministic regardless of task scheduling.
    let mut dx = dy.clone();
    for (e, (_, slots)) in tape.per_expert.iter().enumerate() {
        let s = state.scratch_slot(b, e).lock();
        let idx: Vec<usize> = slots.iter().map(|(t, _)| *t).collect();
        dx.scatter_add_rows(&idx, &vec![1.0; idx.len()], &s.dx);

        // Route the gradient: own → local sum; internal → owner
        // directly; external → local aggregator for pre-reduction.
        let owner = state.placement.owner_of(b, e);
        if owner == rank {
            rt.add_owner_grad(b, e, rank, s.grad.clone(), 1);
        } else if cfg.machine_of(owner) == machine {
            // NVLink push straight to the owner (sim: `grad-int`).
            let _span = obs::span(rank, "comm", || {
                (format!("grad_push/b{b}/e{e}"), format!("b{b}"))
            });
            rt.comm.send(
                owner,
                Message::GradPush {
                    block: b as u32,
                    expert: e as u32,
                    contributions: 1,
                    data: grads_to_bytes(&s.grad),
                },
            )?;
        } else {
            let agg = state
                .placement
                .designated_local(machine, e, cfg.gpus_per_machine);
            if agg == rank {
                rt.aggregate_external(b, e, rank, s.grad.clone(), 1);
            } else {
                // Contribution to the machine's pre-reduction (sim:
                // `grad-acc`).
                let _span = obs::span(rank, "comm", || {
                    (format!("grad_push/b{b}/e{e}"), format!("b{b}"))
                });
                rt.comm.send(
                    agg,
                    Message::GradPush {
                        block: b as u32,
                        expert: e as u32,
                        contributions: 1,
                        data: grads_to_bytes(&s.grad),
                    },
                )?;
            }
        }
    }
    Ok(dx)
}

/// Wait until every owned expert of every block in `blocks` has all W
/// contributions in the inbox, then fold each in ascending sender order
/// (bitwise independent of message arrival order) and apply the SGD step.
/// The wait services aggregation and pull traffic between inbox checks,
/// sleeping on the inbox's condition variable with bounded backoff. The
/// whole wait is capped by [`WorkerState::wait_budget`]: when it blows,
/// the error names every `(block, expert)` still short of contributions
/// and how many arrived, so a dead pusher is identified, not guessed at.
pub(crate) fn wait_and_apply_updates<T: Transport>(
    rt: &DcRuntime<'_, T>,
    state: &mut WorkerState,
    blocks: &[usize],
) -> Result<(), CommError> {
    let cfg = state.cfg.clone();
    let rank = state.rank;
    // Every live rank contributes a gradient for every expert (a rank
    // with zero routed tokens still pushes a zero gradient); dead ranks
    // contribute nothing, so the expected count shrinks with the
    // placement's live set.
    let world = state.placement.live_count() as u32;
    let arrived =
        |parts: &Vec<(usize, ExpertGrads, u32)>| parts.iter().map(|(_, _, n)| *n).sum::<u32>();
    let wait_span = obs::span(rank, "reduce", || {
        ("grad_wait".to_string(), "update".to_string())
    });
    let start = Instant::now();
    let mut backoff = BACKOFF_MIN;
    loop {
        let done = {
            let map = rt.owner_grads.lock();
            blocks.iter().all(|&b| {
                state.owned_ids[b]
                    .iter()
                    .all(|&e| map.get(&(b, e)).is_some_and(|p| arrived(p) == world))
            })
        };
        if done {
            break;
        }
        if start.elapsed() > rt.wait_budget {
            let map = rt.owner_grads.lock();
            let mut missing = Vec::new();
            for &b in blocks {
                for &e in &state.owned_ids[b] {
                    let got = map.get(&(b, e)).map_or(0, &arrived);
                    if got != world {
                        missing.push(format!("block {b} expert {e} has {got}/{world}"));
                    }
                }
            }
            return Err(CommError::Timeout {
                context: format!(
                    "gradient wait by owner rank {rank}: contributions never arrived ({})",
                    missing.join(", ")
                ),
                attempts: 1,
                elapsed: start.elapsed(),
            });
        }
        let handled = rt.comm.service_pass(|from, m| rt.service(from, m))?;
        if handled == 0 {
            rt.owner_grads.wait_changed(backoff);
            backoff = backoff_next(backoff);
        } else {
            backoff = BACKOFF_MIN;
        }
    }
    obs::end_into(wait_span, "janus_grad_wait_us");
    let _apply_span = obs::span(rank, "reduce", || {
        ("apply".to_string(), "update".to_string())
    });
    // Fold each expert's contributions in ascending sender order: the
    // sum — and therefore the weight update — is bitwise independent
    // of the order gradient messages happened to arrive in.
    let mut map = rt.owner_grads.lock();
    for &b in blocks {
        let owned = state.owned_ids[b].clone();
        for (local, e) in owned.into_iter().enumerate() {
            let mut parts = map.remove(&(b, e)).expect("waited for all contributions");
            debug_assert_eq!(arrived(&parts), world);
            parts.sort_by_key(|(sender, _, _)| *sender);
            let mut it = parts.into_iter();
            let (_, mut grad, _) = it.next().expect("world > 0");
            for (_, g, _) in it {
                grad.accumulate(&g);
            }
            state.experts[b][local].apply(&grad, cfg.lr);
        }
    }
    Ok(())
}

/// End of iteration: synchronize, then invalidate the cache (stale
/// weights must never survive into the next iteration, §5.1.1). Call
/// after [`DcRuntime::refresh_serving`].
pub(crate) fn finish_iteration<T: Transport>(
    rt: &DcRuntime<'_, T>,
    state: &WorkerState,
    iter: u64,
) -> Result<(), CommError> {
    rt.barrier(iter * 2)?;
    // The machine's first live worker clears the shared cache between the
    // two barriers, so no sibling can still be reading it and no sibling
    // can race ahead into the next iteration before it is empty.
    let machine = state.cfg.machine_of(state.rank);
    let first_live_local = state
        .placement
        .live_locals(machine, state.cfg.gpus_per_machine)
        .first()
        .copied();
    if first_live_local == Some(state.rank) {
        rt.shared.cache.clear_for_next_iteration();
    }
    rt.barrier(iter * 2 + 1)
}

/// Run one data-centric training iteration.
pub fn run_iteration<T: Transport>(
    comm: &Comm<T>,
    state: &mut WorkerState,
    shared: &MachineShared,
    iter: u64,
) -> Result<IterOutput, CommError> {
    let blocks = state.cfg.blocks;
    let rt = DcRuntime::new(comm, state, shared);
    let iter_span = obs::span(state.rank, "iter", || {
        (format!("iter/{iter}"), "iter".to_string())
    });

    let mut x = state.inputs.clone();
    let mut tapes: Vec<BlockTapeDc> = Vec::with_capacity(blocks);

    // ---- Forward ----
    for b in 0..blocks {
        let (y, tape) = forward_block(&rt, state, b, &x)?;
        tapes.push(tape);
        x = y;
    }

    let (loss, mut dy) = loss_and_grad(&x);
    let output = x;

    // ---- Backward ----
    for b in (0..blocks).rev() {
        dy = backward_block(&rt, state, b, &tapes[b], &dy)?;
    }

    // ---- Update ----
    let all_blocks: Vec<usize> = (0..blocks).collect();
    wait_and_apply_updates(&rt, state, &all_blocks)?;
    rt.refresh_serving(state);
    finish_iteration(&rt, state, iter)?;
    state.comm.record_transport(comm.transport().stats());
    state
        .comm
        .record_cache(shared.cache.stats(), shared.grads.prefolds());
    drop(iter_span);
    Ok(IterOutput { output, loss })
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_comm::runtime::run_workers;
    use janus_tensor::Matrix;

    fn run_dc(cfg: &ExecConfig, iters: u64) -> Vec<(Vec<f32>, Vec<Vec<ExpertFfn>>, Matrix)> {
        let shared = MachineShared::for_cluster(cfg);
        run_workers(cfg.world(), |comm| {
            let mut state = WorkerState::init(cfg, comm.rank());
            let shared = &shared[cfg.machine_of(comm.rank())];
            let mut losses = Vec::new();
            let mut last = None;
            for i in 0..iters {
                let out = run_iteration(&comm, &mut state, shared, i).unwrap();
                losses.push(out.loss);
                last = Some(out.output);
            }
            (losses, state.experts, last.unwrap())
        })
    }

    #[test]
    fn iteration_runs_and_loss_decreases() {
        let cfg = ExecConfig::small();
        for (losses, _, _) in run_dc(&cfg, 4) {
            assert!(losses.iter().all(|l| l.is_finite()));
            assert!(
                losses.last().unwrap() < losses.first().unwrap(),
                "{losses:?}"
            );
        }
    }

    #[test]
    fn cache_hits_confirm_hierarchical_fetching() {
        let cfg = ExecConfig::small();
        let shared = MachineShared::for_cluster(&cfg);
        run_workers(cfg.world(), |comm| {
            let mut state = WorkerState::init(&cfg, comm.rank());
            let sh = &shared[cfg.machine_of(comm.rank())];
            run_iteration(&comm, &mut state, sh, 0).unwrap();
        });
        // Each machine has 4 external experts over 2 blocks = 8 fetches;
        // the sibling worker reads them from the cache (8 hits minimum).
        for sh in &shared {
            let stats = sh.cache.stats();
            assert_eq!(stats.fetches, 8, "one fetch per external expert per block");
            assert!(
                stats.hits >= 8,
                "siblings must hit the cache, got {}",
                stats.hits
            );
        }
    }

    #[test]
    fn single_machine_configuration_works() {
        let cfg = ExecConfig {
            machines: 1,
            gpus_per_machine: 4,
            ..ExecConfig::small()
        };
        for (losses, _, _) in run_dc(&cfg, 2) {
            assert!(losses[1] < losses[0]);
        }
    }

    #[test]
    fn single_gpu_per_machine_works() {
        let cfg = ExecConfig {
            machines: 4,
            gpus_per_machine: 1,
            ..ExecConfig::small()
        };
        for (losses, _, _) in run_dc(&cfg, 2) {
            assert!(losses[1] < losses[0]);
        }
    }

    #[test]
    fn nonuniform_expert_counts_work() {
        // The mixed config's blocks have different expert counts; the
        // pure data-centric engine must handle the per-block layout.
        let cfg = ExecConfig::mixed_paradigms();
        for (losses, _, _) in run_dc(&cfg, 2) {
            assert!(losses.iter().all(|l| l.is_finite()));
        }
    }
}
