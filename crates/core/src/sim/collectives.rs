//! Collective stress tests (the paper's §3.1 goodput observation).
//!
//! The paper stress-tests All-to-All goodput in two environments: one
//! 8-GPU machine (NVLink only) and four 8-GPU machines over RDMA. The
//! measured gap — 1846.58 Gbps vs 101.9 Gbps — is the heterogeneity
//! motivation behind the topology-aware and hierarchical designs. This
//! module reproduces the experiment on the simulator.

use janus_netsim::{simulate, GraphBuilder, SimError, Work};
use janus_topology::{Cluster, Location, WorkerId};
use serde::Serialize;

/// Result of one All-to-All stress run.
#[derive(Debug, Clone, Serialize)]
pub struct GoodputReport {
    /// Cluster shape.
    pub machines: usize,
    /// GPUs per machine.
    pub gpus_per_machine: usize,
    /// Total payload moved.
    pub total_bytes: f64,
    /// Completion time of the collective.
    pub seconds: f64,
    /// Aggregate goodput over all pairs, in Gbps.
    pub goodput_gbps: f64,
    /// Goodput of the cross-machine pairs only, in Gbps (equals the
    /// aggregate on a single machine). This is the number comparable to
    /// the paper's inter-node measurement: the NIC-bound phase dominates
    /// the completion time, so intra-node pairs finish long before.
    pub cross_node_gbps: f64,
}

/// Run one All-to-All where every GPU sends `bytes_per_pair` to every
/// other GPU, and report aggregate goodput.
pub fn a2a_goodput(cluster: &Cluster, bytes_per_pair: f64) -> Result<GoodputReport, SimError> {
    let w = cluster.num_workers();
    let mut g = GraphBuilder::new(cluster.num_links(), 0);
    let mut total = 0.0;
    let mut cross = 0.0;
    for src in 0..w {
        for dst in 0..w {
            if src == dst {
                continue;
            }
            let route = cluster.route(Location::Gpu(WorkerId(src)), Location::Gpu(WorkerId(dst)));
            g.task(
                Work::Transfer {
                    route,
                    bytes: bytes_per_pair,
                    lane: None,
                    latency: 0.0,
                },
                &[],
            );
            total += bytes_per_pair;
            if cluster.machine_of(WorkerId(src)) != cluster.machine_of(WorkerId(dst)) {
                cross += bytes_per_pair;
            }
        }
    }
    let result = simulate(&g.build(), &cluster.capacities())?;
    let cross_node_gbps = if cross > 0.0 {
        cross * 8.0 / result.makespan / 1e9
    } else {
        total * 8.0 / result.makespan / 1e9
    };
    Ok(GoodputReport {
        machines: cluster.num_machines(),
        gpus_per_machine: cluster.gpus_per_machine(),
        total_bytes: total,
        seconds: result.makespan,
        goodput_gbps: total * 8.0 / result.makespan / 1e9,
        cross_node_gbps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_topology::ClusterSpec;

    #[test]
    fn intra_node_goodput_far_exceeds_inter_node() {
        // Paper §3.1: 1846.58 Gbps on one machine vs 101.9 Gbps across
        // four machines — an ~18× gap. The simulator reproduces a gap of
        // the same order (NVLink ports vs 200 Gbps NICs).
        let intra = a2a_goodput(&ClusterSpec::a100(1, 8).build(), 64e6).unwrap();
        let inter = a2a_goodput(&ClusterSpec::a100(4, 8).build(), 64e6).unwrap();
        assert!(
            intra.goodput_gbps > 1_000.0,
            "intra-node goodput too low: {:.1} Gbps",
            intra.goodput_gbps
        );
        assert!(
            inter.cross_node_gbps < 900.0,
            "cross-node goodput cannot exceed 4 NICs' line rate: {:.1} Gbps",
            inter.cross_node_gbps
        );
        let gap = intra.goodput_gbps / inter.cross_node_gbps;
        assert!(gap > 8.0, "gap only {gap:.1}×");
    }

    #[test]
    fn goodput_independent_of_payload_size() {
        // Fluid model: no per-message latency, so goodput is scale-free.
        let small = a2a_goodput(&ClusterSpec::a100(2, 4).build(), 1e6).unwrap();
        let large = a2a_goodput(&ClusterSpec::a100(2, 4).build(), 64e6).unwrap();
        assert!((small.goodput_gbps - large.goodput_gbps).abs() / large.goodput_gbps < 1e-9);
    }

    #[test]
    fn inter_node_is_nic_bound() {
        // Aggregate inter-node goodput cannot exceed what the NICs admit.
        let c = ClusterSpec::a100(4, 2).build();
        let report = a2a_goodput(&c, 16e6).unwrap();
        // 4 NICs × 200 Gbps egress is a hard ceiling for the cross-node
        // part; intra-node flows finish long before, so the makespan is
        // set by the NIC phase.
        let ceiling = 4.0 * 200.0;
        // Cross-node fraction of the traffic is (w - m)/(w - 1) per
        // worker; aggregate goodput must stay below the ceiling divided
        // by the cross-node fraction.
        assert!(report.cross_node_gbps <= ceiling * 1.01, "{report:?}");
    }
}
