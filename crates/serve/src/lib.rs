//! `janus-serve`: the MoE inference serving plane.
//!
//! Training (the paper's subject) moves expert weights or tokens to
//! wherever the *batch* already is; serving inverts the question — an
//! open-loop stream of small requests arrives and the system must keep
//! tail latency bounded while the gate sends a Zipf-skewed share of all
//! tokens to a handful of hot experts. This crate builds that plane out
//! of the training stack's own parts:
//!
//! * [`batcher`] — iteration-level **continuous batching**: requests
//!   join the next engine step the moment they arrive (FCFS, bounded by
//!   a token budget) instead of waiting for a fixed-size batch to fill.
//! * [`replica`] — gate-driven **replica scaling**: the observed routing
//!   histogram is turned into per-expert replica counts by a
//!   highest-averages apportionment, so hot experts get more workers.
//! * [`workload`] — seeded open-loop request streams with Zipf-skewed
//!   expert intent, plus the [`ServeConfig`](workload::ServeConfig)
//!   knobs shared by the simulator and the real engine.
//! * [`model`] — the served model: a steering [`TopKGate`] over real
//!   [`ExpertFfn`] weights, with a bitwise reference forward pass.
//! * [`engine`] — the **disaggregated** runtime: rank 0 (the attention /
//!   frontend worker) batches, gates, and dispatches token chunks over
//!   `janus-comm`; expert workers pull weights on demand through the
//!   training [`CacheManager`] and stream results back. A dead expert
//!   worker degrades to its replica (failover + redispatch) instead of
//!   failing requests, via the liveness board.
//! * [`sim`] — the same serving pipeline as a `janus-netsim` task graph:
//!   p50/p99 latency versus replica budget, before touching a socket.
//! * [`report`] — the `repro serve` SLO artifact: simulated and real
//!   (TCP) latency sweeps over replica budgets.
//!
//! Determinism contract: expert kernels are row-independent and the
//! frontend combines expert outputs in a fixed (token, rank-of-choice)
//! order, so a request's response bytes depend only on the model and the
//! request tokens — not on batch composition, replica placement, fault
//! injection, or mid-run failover. The chaos and crash test matrices
//! assert exactly that.
//!
//! [`TopKGate`]: janus_moe::gate::TopKGate
//! [`ExpertFfn`]: janus_moe::expert::ExpertFfn
//! [`CacheManager`]: janus_core::queue::CacheManager

pub mod batcher;
pub mod engine;
pub mod model;
pub mod replica;
pub mod report;
pub mod sim;
pub mod workload;

pub use batcher::{Batcher, RequestId};
pub use engine::{
    plan_from_workload, serve_local, serve_on, CrashHook, FrontendOutcome, ServeOpts, ServeRun,
    ServeSpec, WorkerOutcome,
};
pub use model::ServeModel;
pub use replica::{replica_counts, ReplicaPlan};
pub use report::{RealRow, SimRow, SloReport, MASKED_KEYS};
pub use sim::{simulate_serving, SimOpts, SimPoint};
pub use workload::{Request, ServeConfig, ServeWorkload};
