//! Offline shim for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` for the shim `serde` crate's `Value`-based
//! data model.
//!
//! Implemented with hand-rolled `proc_macro::TokenStream` parsing (no
//! `syn`/`quote` available offline). Supports the shapes this workspace
//! uses: named-field structs, newtype/tuple structs, unit structs, and
//! enums with unit / newtype / struct variants, plus the `#[serde(skip)]`
//! field attribute. Generic type parameters are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Ser)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::De)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_item(input) {
        Ok((name, item)) => {
            let code = match mode {
                Mode::Ser => gen_serialize(&name, &item),
                Mode::De => gen_deserialize(&name, &item),
            };
            code.parse().expect("shim derive generated invalid Rust")
        }
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---- parsing ----

fn parse_item(input: TokenStream) -> Result<(String, Item), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generic type `{name}`; \
             hand-write the impl or extend crates/shims/serde_derive"
        ));
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Item::NamedStruct(parse_named_fields(g.stream())?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok((name, Item::TupleStruct(count_tuple_fields(g.stream()))))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Item::UnitStruct)),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Item::Enum(parse_variants(g.stream())?)))
            }
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        other => Err(format!("expected struct or enum, got `{other}`")),
    }
}

/// Advance past outer attributes (`#[...]`) and a `pub`/`pub(...)`
/// visibility marker.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' plus the bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Whether the attribute group at `tokens[i]` (after its `#`) is
/// `[serde(skip)]`.
fn attr_is_serde_skip(tokens: &[TokenTree], i: usize) -> bool {
    let Some(TokenTree::Group(g)) = tokens.get(i) else {
        return false;
    };
    if g.delimiter() != Delimiter::Bracket {
        return false;
    }
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    match (inner.first(), inner.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream().into_iter().any(|t| {
                matches!(t, TokenTree::Ident(ref a)
                if a.to_string() == "skip")
            })
        }
        _ => false,
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes (noting #[serde(skip)]) and visibility.
        let mut skip = false;
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if attr_is_serde_skip(&tokens, i + 1) {
                        skip = true;
                    }
                    i += 2;
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if matches!(tokens.get(i), Some(TokenTree::Group(g))
                        if g.delimiter() == Delimiter::Parenthesis)
                    {
                        i += 1;
                    }
                }
                _ => break,
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break, // trailing comma
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after `{name}`, got {other:?}")),
        }
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        // Parens/brackets/braces arrive as single Group tokens, so only
        // `<`/`>` need explicit depth tracking.
        let mut angle_depth = 0i32;
        while let Some(tt) = tokens.get(i) {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_trailing_comma = false;
    for (idx, tt) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if idx == tokens.len() - 1 {
                        saw_trailing_comma = true;
                    } else {
                        count += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let _ = saw_trailing_comma;
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                match count_tuple_fields(g.stream()) {
                    1 => VariantKind::Newtype,
                    n => VariantKind::Tuple(n),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        // Optional discriminant (`= expr`) then comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    break;
                }
            }
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---- codegen ----

fn gen_serialize(name: &str, item: &Item) -> String {
    let body = match item {
        Item::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "(::std::string::String::from({n:?}), \
                         ::serde::Serialize::to_value(&self.{n}))",
                        n = f.name
                    )
                })
                .collect();
            format!("::serde::Value::Obj(::std::vec![{}])", entries.join(", "))
        }
        Item::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Item::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Arr(::std::vec![{}])", entries.join(", "))
        }
        Item::UnitStruct => "::serde::Value::Null".to_string(),
        Item::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from({vn:?}))"
                        ),
                        VariantKind::Newtype => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Obj(::std::vec![\
                             (::std::string::String::from({vn:?}), \
                             ::serde::Serialize::to_value(__f0))])"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let vals: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Obj(::std::vec![\
                                 (::std::string::String::from({vn:?}), \
                                 ::serde::Value::Arr(::std::vec![{vals}]))])",
                                binds = binds.join(", "),
                                vals = vals.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .filter(|f| !f.skip)
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({n:?}), \
                                         ::serde::Serialize::to_value({n}))",
                                        n = f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => \
                                 ::serde::Value::Obj(::std::vec![\
                                 (::std::string::String::from({vn:?}), \
                                 ::serde::Value::Obj(::std::vec![{entries}]))])",
                                binds = binds.join(", "),
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(name: &str, item: &Item) -> String {
    let body = match item {
        Item::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: ::core::default::Default::default()", f.name)
                    } else {
                        format!("{n}: ::serde::field(__obj, {n:?})?", n = f.name)
                    }
                })
                .collect();
            format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::DeError::new(concat!(\"expected object for \", {name:?})))?;\n\
                 ::core::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Item::TupleStruct(1) => {
            format!("::core::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Item::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                .collect();
            format!(
                "let __arr = __v.as_array().ok_or_else(|| \
                 ::serde::DeError::new(concat!(\"expected array for \", {name:?})))?;\n\
                 if __arr.len() != {n} {{ return ::core::result::Result::Err(\
                 ::serde::DeError::new(\"tuple arity mismatch\")); }}\n\
                 ::core::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Item::UnitStruct => format!("::core::result::Result::Ok({name})"),
        Item::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "{vn:?} => ::core::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Newtype => Some(format!(
                            "{vn:?} => ::core::result::Result::Ok(\
                             {name}::{vn}(::serde::Deserialize::from_value(__val)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                 let __arr = __val.as_array().ok_or_else(|| \
                                 ::serde::DeError::new(\"expected array variant\"))?;\n\
                                 if __arr.len() != {n} {{ return \
                                 ::core::result::Result::Err(::serde::DeError::new(\
                                 \"variant arity mismatch\")); }}\n\
                                 ::core::result::Result::Ok({name}::{vn}({}))\n\
                                 }},",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    if f.skip {
                                        format!("{}: ::core::default::Default::default()", f.name)
                                    } else {
                                        format!("{n}: ::serde::field(__vobj, {n:?})?", n = f.name)
                                    }
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                 let __vobj = __val.as_object().ok_or_else(|| \
                                 ::serde::DeError::new(\"expected object variant\"))?;\n\
                                 ::core::result::Result::Ok({name}::{vn} {{ {} }})\n\
                                 }},",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {units}\n\
                 __other => ::core::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Obj(__fields) if __fields.len() == 1 => {{\n\
                 let (__k, __val) = &__fields[0];\n\
                 match __k.as_str() {{\n\
                 {datas}\n\
                 __other => ::core::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 __other => ::core::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"expected variant of {name}, got {{__other:?}}\"))),\n\
                 }}",
                units = unit_arms.join("\n"),
                datas = data_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::core::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
