//! Wire vocabulary of the Janus data and control planes.

use crate::transport::CommError;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// One message between workers. Bulk payloads (`Bytes`) hold serialized
/// expert weights, gradients, or token batches; the runtime never looks
/// inside them.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Data-centric control plane: "send me expert `expert` of MoE block
    /// `block`" (the paper's pull request). `nonce` is unique per request
    /// attempt at the requester, echoed back in the payload, so a
    /// deadline-driven re-request can never be satisfied by a stale
    /// response from an earlier attempt (or an earlier iteration).
    PullRequest {
        /// MoE block index.
        block: u32,
        /// Global expert index.
        expert: u32,
        /// Requester-unique request id, echoed in the response.
        nonce: u32,
    },
    /// Data-centric data plane: the requested expert's weights.
    ExpertPayload {
        /// MoE block index.
        block: u32,
        /// Global expert index.
        expert: u32,
        /// Echo of the pull request's nonce.
        nonce: u32,
        /// Serialized weights.
        data: Bytes,
    },
    /// Data-centric backward: a (pre-reduced) gradient for an expert,
    /// carrying how many workers' contributions it already aggregates.
    GradPush {
        /// MoE block index.
        block: u32,
        /// Global expert index.
        expert: u32,
        /// Number of per-worker contributions already summed in.
        contributions: u32,
        /// Serialized gradient.
        data: Bytes,
    },
    /// Expert-centric: tokens routed to a peer (one All-to-All lane).
    TokenDispatch {
        /// MoE block index.
        block: u32,
        /// Collective sequence number (disambiguates successive
        /// All-to-Alls of the same block in fwd/bwd).
        seq: u32,
        /// Serialized token batch.
        data: Bytes,
    },
    /// Expert-centric: processed tokens returned to their origin.
    TokenReturn {
        /// MoE block index.
        block: u32,
        /// Collective sequence number.
        seq: u32,
        /// Serialized token batch.
        data: Bytes,
    },
    /// Synchronization marker (end of iteration, cache invalidation).
    Barrier {
        /// Monotone barrier epoch.
        epoch: u64,
    },
    /// Generic collective payload used by [`crate::collectives`].
    Collective {
        /// Operation sequence number.
        seq: u64,
        /// Chunk payload.
        data: Bytes,
    },
    /// Orderly teardown of a peer connection.
    Shutdown,
    /// Reliability envelope ([`crate::reliable::ReliableTransport`]):
    /// `data` is an encoded inner message, `seq` its per-(sender,
    /// receiver)-pair sequence number (starting at 1). The receiver
    /// delivers per-pair in `seq` order exactly once.
    Reliable {
        /// Per-pair sequence number, 1-based.
        seq: u64,
        /// The encoded inner [`Message`].
        data: Bytes,
    },
    /// Cumulative acknowledgement: every [`Message::Reliable`] frame the
    /// sender of this ack received from the addressee with `seq <= ack`
    /// has been delivered. Acks are idempotent and never retransmitted
    /// on their own — a lost ack is recovered by the data retransmit it
    /// would have suppressed.
    Ack {
        /// Highest contiguous delivered sequence number.
        ack: u64,
    },
    /// Liveness beacon ([`crate::liveness::LivenessMonitor`]): "I am
    /// alive". Emitted every N virtual send-ops, consumed by the
    /// monitor on the receiving side, never delivered to the protocol
    /// layers above it.
    Heartbeat {
        /// Monotone per-sender heartbeat sequence number.
        seq: u64,
    },
}

const TAG_PULL: u8 = 1;
const TAG_EXPERT: u8 = 2;
const TAG_GRAD: u8 = 3;
const TAG_DISPATCH: u8 = 4;
const TAG_RETURN: u8 = 5;
const TAG_BARRIER: u8 = 6;
const TAG_COLLECTIVE: u8 = 7;
const TAG_SHUTDOWN: u8 = 8;
const TAG_RELIABLE: u8 = 9;
const TAG_ACK: u8 = 10;
const TAG_HEARTBEAT: u8 = 11;

/// The fixed-size prefix of an encoded [`Message`], built on the stack:
/// tag, scalar fields, and — when the variant carries a bulk payload —
/// the payload length. Concatenating it with the payload bytes yields
/// exactly [`Message::encode`]'s output, so the send path can hand the
/// header and the payload to a vectored write without ever copying the
/// payload into an intermediate buffer.
#[derive(Debug, Clone, Copy)]
pub struct EncodedHeader {
    buf: [u8; Self::MAX],
    len: usize,
}

impl EncodedHeader {
    /// Largest possible header: tag + three `u32` fields + payload length.
    pub const MAX: usize = 17;

    fn new() -> Self {
        EncodedHeader {
            buf: [0; Self::MAX],
            len: 0,
        }
    }

    fn put(&mut self, bytes: &[u8]) {
        self.buf[self.len..self.len + bytes.len()].copy_from_slice(bytes);
        self.len += bytes.len();
    }

    /// The encoded header bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[..self.len]
    }
}

impl Message {
    /// Encode into a byte buffer (framing is added separately by
    /// [`crate::codec`]). Built from [`Message::encode_parts`], so the
    /// two encodings cannot diverge.
    pub fn encode(&self) -> Bytes {
        let (header, payload) = self.encode_parts();
        let mut b = BytesMut::with_capacity(header.as_slice().len() + self.payload_len());
        b.put_slice(header.as_slice());
        if let Some(data) = payload {
            b.put_slice(data);
        }
        b.freeze()
    }

    /// Zero-copy encoding: the fixed-size header on the stack plus a
    /// borrow of the bulk payload, if the variant has one. The payload
    /// is never copied; the wire bytes are `header ‖ payload`.
    pub fn encode_parts(&self) -> (EncodedHeader, Option<&Bytes>) {
        let mut h = EncodedHeader::new();
        let mut payload = None;
        match self {
            Message::PullRequest {
                block,
                expert,
                nonce,
            } => {
                h.put(&[TAG_PULL]);
                h.put(&block.to_be_bytes());
                h.put(&expert.to_be_bytes());
                h.put(&nonce.to_be_bytes());
            }
            Message::ExpertPayload {
                block,
                expert,
                nonce,
                data,
            } => {
                h.put(&[TAG_EXPERT]);
                h.put(&block.to_be_bytes());
                h.put(&expert.to_be_bytes());
                h.put(&nonce.to_be_bytes());
                h.put(&(data.len() as u32).to_be_bytes());
                payload = Some(data);
            }
            Message::GradPush {
                block,
                expert,
                contributions,
                data,
            } => {
                h.put(&[TAG_GRAD]);
                h.put(&block.to_be_bytes());
                h.put(&expert.to_be_bytes());
                h.put(&contributions.to_be_bytes());
                h.put(&(data.len() as u32).to_be_bytes());
                payload = Some(data);
            }
            Message::TokenDispatch { block, seq, data } => {
                h.put(&[TAG_DISPATCH]);
                h.put(&block.to_be_bytes());
                h.put(&seq.to_be_bytes());
                h.put(&(data.len() as u32).to_be_bytes());
                payload = Some(data);
            }
            Message::TokenReturn { block, seq, data } => {
                h.put(&[TAG_RETURN]);
                h.put(&block.to_be_bytes());
                h.put(&seq.to_be_bytes());
                h.put(&(data.len() as u32).to_be_bytes());
                payload = Some(data);
            }
            Message::Barrier { epoch } => {
                h.put(&[TAG_BARRIER]);
                h.put(&epoch.to_be_bytes());
            }
            Message::Collective { seq, data } => {
                h.put(&[TAG_COLLECTIVE]);
                h.put(&seq.to_be_bytes());
                h.put(&(data.len() as u32).to_be_bytes());
                payload = Some(data);
            }
            Message::Shutdown => h.put(&[TAG_SHUTDOWN]),
            Message::Reliable { seq, data } => {
                h.put(&[TAG_RELIABLE]);
                h.put(&seq.to_be_bytes());
                h.put(&(data.len() as u32).to_be_bytes());
                payload = Some(data);
            }
            Message::Ack { ack } => {
                h.put(&[TAG_ACK]);
                h.put(&ack.to_be_bytes());
            }
            Message::Heartbeat { seq } => {
                h.put(&[TAG_HEARTBEAT]);
                h.put(&seq.to_be_bytes());
            }
        }
        (h, payload)
    }

    /// Decode a buffer produced by [`Message::encode`].
    pub fn decode(mut buf: Bytes) -> Result<Message, CommError> {
        if buf.remaining() < 1 {
            return Err(CommError::Decode("empty message".into()));
        }
        let tag = buf.get_u8();
        let msg = match tag {
            TAG_PULL => {
                need(&buf, 12)?;
                Message::PullRequest {
                    block: buf.get_u32(),
                    expert: buf.get_u32(),
                    nonce: buf.get_u32(),
                }
            }
            TAG_EXPERT => {
                need(&buf, 12)?;
                let block = buf.get_u32();
                let expert = buf.get_u32();
                let nonce = buf.get_u32();
                Message::ExpertPayload {
                    block,
                    expert,
                    nonce,
                    data: take_bytes(&mut buf)?,
                }
            }
            TAG_GRAD => {
                need(&buf, 12)?;
                let block = buf.get_u32();
                let expert = buf.get_u32();
                let contributions = buf.get_u32();
                Message::GradPush {
                    block,
                    expert,
                    contributions,
                    data: take_bytes(&mut buf)?,
                }
            }
            TAG_DISPATCH => {
                need(&buf, 8)?;
                let block = buf.get_u32();
                let seq = buf.get_u32();
                Message::TokenDispatch {
                    block,
                    seq,
                    data: take_bytes(&mut buf)?,
                }
            }
            TAG_RETURN => {
                need(&buf, 8)?;
                let block = buf.get_u32();
                let seq = buf.get_u32();
                Message::TokenReturn {
                    block,
                    seq,
                    data: take_bytes(&mut buf)?,
                }
            }
            TAG_BARRIER => {
                need(&buf, 8)?;
                Message::Barrier {
                    epoch: buf.get_u64(),
                }
            }
            TAG_COLLECTIVE => {
                need(&buf, 8)?;
                let seq = buf.get_u64();
                Message::Collective {
                    seq,
                    data: take_bytes(&mut buf)?,
                }
            }
            TAG_SHUTDOWN => Message::Shutdown,
            TAG_RELIABLE => {
                need(&buf, 8)?;
                let seq = buf.get_u64();
                Message::Reliable {
                    seq,
                    data: take_bytes(&mut buf)?,
                }
            }
            TAG_ACK => {
                need(&buf, 8)?;
                Message::Ack { ack: buf.get_u64() }
            }
            TAG_HEARTBEAT => {
                need(&buf, 8)?;
                Message::Heartbeat { seq: buf.get_u64() }
            }
            other => return Err(CommError::Decode(format!("unknown message tag {other}"))),
        };
        if buf.has_remaining() {
            return Err(CommError::Decode(format!(
                "{} trailing bytes after message",
                buf.remaining()
            )));
        }
        Ok(msg)
    }

    /// Bulk payload size, for logging and traffic accounting.
    pub fn payload_len(&self) -> usize {
        match self {
            Message::ExpertPayload { data, .. }
            | Message::GradPush { data, .. }
            | Message::TokenDispatch { data, .. }
            | Message::TokenReturn { data, .. }
            | Message::Collective { data, .. }
            | Message::Reliable { data, .. } => data.len(),
            _ => 0,
        }
    }
}

fn need(buf: &Bytes, n: usize) -> Result<(), CommError> {
    if buf.remaining() < n {
        Err(CommError::Decode(format!(
            "message truncated: need {n} bytes, have {}",
            buf.remaining()
        )))
    } else {
        Ok(())
    }
}

fn take_bytes(buf: &mut Bytes) -> Result<Bytes, CommError> {
    need(buf, 4)?;
    let len = buf.get_u32() as usize;
    need(buf, len)?;
    Ok(buf.split_to(len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let encoded = msg.encode();
        let decoded = Message::decode(encoded).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn all_variants_round_trip() {
        roundtrip(Message::PullRequest {
            block: 3,
            expert: 17,
            nonce: 41,
        });
        roundtrip(Message::ExpertPayload {
            block: 1,
            expert: 2,
            nonce: u32::MAX,
            data: Bytes::from(vec![1, 2, 3, 4, 5]),
        });
        roundtrip(Message::GradPush {
            block: 0,
            expert: 31,
            contributions: 8,
            data: Bytes::from(vec![0u8; 100]),
        });
        roundtrip(Message::TokenDispatch {
            block: 5,
            seq: 9,
            data: Bytes::from(vec![7; 16]),
        });
        roundtrip(Message::TokenReturn {
            block: 5,
            seq: 10,
            data: Bytes::new(),
        });
        roundtrip(Message::Barrier { epoch: u64::MAX });
        roundtrip(Message::Collective {
            seq: 42,
            data: Bytes::from(vec![9; 3]),
        });
        roundtrip(Message::Shutdown);
        roundtrip(Message::Reliable {
            seq: 1 << 40,
            data: Bytes::from(vec![8; 9]),
        });
        roundtrip(Message::Ack { ack: 0 });
        roundtrip(Message::Heartbeat { seq: 1 << 33 });
    }

    #[test]
    fn reliable_envelope_nests_any_message() {
        let inner = Message::GradPush {
            block: 2,
            expert: 5,
            contributions: 3,
            data: Bytes::from(vec![1, 2, 3]),
        };
        let wrapped = Message::Reliable {
            seq: 7,
            data: inner.encode(),
        };
        match Message::decode(wrapped.encode()).unwrap() {
            Message::Reliable { seq, data } => {
                assert_eq!(seq, 7);
                assert_eq!(Message::decode(data).unwrap(), inner);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Pin the wire layout: `encode` is now derived from
    /// `encode_parts`, so this golden test is what keeps the format
    /// compatible with frames written by older builds.
    #[test]
    fn wire_layout_is_stable() {
        let m = Message::ExpertPayload {
            block: 1,
            expert: 2,
            nonce: 3,
            data: Bytes::from(vec![0xAA, 0xBB]),
        };
        assert_eq!(
            m.encode().to_vec(),
            vec![2, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0, 2, 0xAA, 0xBB]
        );
        let b = Message::Barrier { epoch: 0x0102 };
        assert_eq!(b.encode().to_vec(), vec![6, 0, 0, 0, 0, 0, 0, 1, 2]);
        assert_eq!(Message::Shutdown.encode().to_vec(), vec![8]);
    }

    /// `encode_parts` concatenated must equal `encode` for every
    /// variant, with the header under the documented size cap.
    #[test]
    fn encode_parts_matches_encode() {
        let variants = [
            Message::PullRequest {
                block: 9,
                expert: 8,
                nonce: 7,
            },
            Message::ExpertPayload {
                block: 1,
                expert: 2,
                nonce: 3,
                data: Bytes::from(vec![5; 33]),
            },
            Message::GradPush {
                block: 4,
                expert: 5,
                contributions: 6,
                data: Bytes::from(vec![1, 2]),
            },
            Message::TokenDispatch {
                block: 0,
                seq: 1,
                data: Bytes::new(),
            },
            Message::TokenReturn {
                block: 0,
                seq: 2,
                data: Bytes::from(vec![9]),
            },
            Message::Barrier { epoch: u64::MAX },
            Message::Collective {
                seq: 3,
                data: Bytes::from(vec![0; 100]),
            },
            Message::Shutdown,
            Message::Reliable {
                seq: 1 << 50,
                data: Bytes::from(vec![3; 8]),
            },
            Message::Ack { ack: 12 },
            Message::Heartbeat { seq: 1 },
        ];
        for m in &variants {
            let (header, payload) = m.encode_parts();
            assert!(header.as_slice().len() <= EncodedHeader::MAX);
            let mut joined = header.as_slice().to_vec();
            if let Some(d) = payload {
                joined.extend_from_slice(d);
            }
            assert_eq!(joined, m.encode().to_vec(), "variant {m:?}");
            assert_eq!(Message::decode(Bytes::from(joined)).unwrap(), *m);
        }
    }

    #[test]
    fn payload_len_reports_bulk_size() {
        let m = Message::ExpertPayload {
            block: 0,
            expert: 0,
            nonce: 0,
            data: Bytes::from(vec![0; 77]),
        };
        assert_eq!(m.payload_len(), 77);
        assert_eq!(Message::Shutdown.payload_len(), 0);
    }

    #[test]
    fn decode_rejects_empty() {
        assert!(matches!(
            Message::decode(Bytes::new()),
            Err(CommError::Decode(_))
        ));
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        let err = Message::decode(Bytes::from(vec![200])).unwrap_err();
        assert!(err.to_string().contains("unknown message tag"));
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut full = Message::ExpertPayload {
            block: 1,
            expert: 2,
            nonce: 0,
            data: Bytes::from(vec![1, 2, 3]),
        }
        .encode()
        .to_vec();
        full.truncate(full.len() - 2);
        assert!(Message::decode(Bytes::from(full)).is_err());
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut full = Message::Barrier { epoch: 1 }.encode().to_vec();
        full.push(0xFF);
        let err = Message::decode(Bytes::from(full)).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }
}
