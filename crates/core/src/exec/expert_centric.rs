//! Numerical expert-centric training iteration (the All-to-All baseline).
//!
//! Forward, per block: route tokens, All-to-All the routed slots to the
//! expert owners, compute, All-to-All the results back, combine with the
//! gate weights on a residual stream. Backward mirrors the two
//! collectives; expert owners accumulate weight gradients locally over
//! the full received batch.

use crate::exec::model::{loss_and_grad, ExecConfig, WorkerState};
use crate::exec::weights::{tokens_from_bytes, tokens_to_bytes, Slot};
use janus_comm::collectives::{all_to_all, barrier};
use janus_comm::{Comm, CommError, Transport};
use janus_moe::expert::{ExpertCache, ExpertGrads};
use janus_tensor::Matrix;

/// Output of one training iteration.
#[derive(Debug, Clone)]
pub struct IterOutput {
    /// Final block output for this worker's tokens.
    pub output: Matrix,
    /// `½‖y‖²` loss over this worker's output.
    pub loss: f32,
}

/// What each owned expert remembers between forward and backward.
struct ExpertTape {
    /// Global expert id.
    expert: usize,
    /// Forward cache.
    cache: ExpertCache,
    /// Origin of every row of the expert batch: `(src_rank, slot)`.
    origins: Vec<(usize, Slot)>,
}

/// Per-block forward bookkeeping.
struct BlockTapeEc {
    /// Slots this worker dispatched, grouped per destination rank.
    sent: Vec<Vec<Slot>>,
    /// Tapes of the experts this worker owns.
    experts: Vec<ExpertTape>,
}

fn a2a_seq(iter: u64, block: usize, phase: u64) -> u64 {
    (iter << 16) | ((block as u64) << 4) | phase
}

/// Group this worker's routed slots by destination rank, in (expert
/// ascending, token ascending) order — the deterministic order both
/// paradigms share.
fn group_slots(cfg: &ExecConfig, routing: &janus_moe::gate::Routing) -> Vec<Vec<Slot>> {
    let mut per_dst: Vec<Vec<Slot>> = vec![Vec::new(); cfg.world()];
    for e in 0..cfg.experts {
        let dst = cfg.owner_of(e);
        for (tok, w) in routing.tokens_for(e) {
            per_dst[dst].push((tok as u32, e as u32, w));
        }
    }
    per_dst
}

/// Run one expert-centric training iteration.
pub fn run_iteration<T: Transport>(
    comm: &Comm<T>,
    state: &mut WorkerState,
    iter: u64,
) -> Result<IterOutput, CommError> {
    let cfg = state.cfg.clone();
    let world = cfg.world();
    let mut x = state.inputs.clone();
    let mut tapes: Vec<BlockTapeEc> = Vec::with_capacity(cfg.blocks);

    // ---- Forward ----
    for b in 0..cfg.blocks {
        let routing = state.gates[b].route(&x);
        let sent = group_slots(&cfg, &routing);

        // Dispatch A2A.
        let chunks: Vec<Vec<u8>> = sent
            .iter()
            .map(|slots| {
                let idx: Vec<usize> = slots.iter().map(|s| s.0 as usize).collect();
                tokens_to_bytes(slots, &x.gather_rows(&idx)).to_vec()
            })
            .collect();
        let received = all_to_all(comm, a2a_seq(iter, b, 0), chunks)?;

        // Build per-owned-expert batches in (src asc, slot order) order.
        let decoded: Vec<(Vec<Slot>, Matrix)> = received
            .into_iter()
            .map(|c| tokens_from_bytes(c.into()))
            .collect::<Result<_, _>>()?;
        let mut expert_tapes = Vec::new();
        let mut returns: Vec<(Vec<Slot>, Vec<Vec<f32>>)> =
            (0..world).map(|_| (Vec::new(), Vec::new())).collect();
        for e in cfg.owned_experts(state.rank) {
            let mut rows = Vec::new();
            let mut origins = Vec::new();
            for (src, (slots, mat)) in decoded.iter().enumerate() {
                for (i, slot) in slots.iter().enumerate() {
                    if slot.1 as usize == e {
                        rows.push(mat.row(i).to_vec());
                        origins.push((src, *slot));
                    }
                }
            }
            let batch = rows_to_matrix(&rows, cfg.hidden_dim);
            let local = e - cfg.owned_experts(state.rank).start;
            let (y_e, cache) = state.experts[b][local].forward(&batch);
            for (i, (src, slot)) in origins.iter().enumerate() {
                returns[*src].0.push(*slot);
                returns[*src].1.push(y_e.row(i).to_vec());
            }
            expert_tapes.push(ExpertTape { expert: e, cache, origins });
        }

        // Combine A2A: send results home.
        let chunks: Vec<Vec<u8>> = returns
            .iter()
            .map(|(slots, rows)| {
                tokens_to_bytes(slots, &rows_to_matrix(rows, cfg.hidden_dim)).to_vec()
            })
            .collect();
        let received = all_to_all(comm, a2a_seq(iter, b, 1), chunks)?;

        // y = x + Σ wₖ·expertₖ(x): iterate sources in rank order, which is
        // expert-ascending order because expert ownership is contiguous.
        let mut y = x.clone();
        for chunk in received {
            let (slots, rows) = tokens_from_bytes(chunk.into())?;
            for (i, (tok, _e, w)) in slots.iter().enumerate() {
                y.scatter_add_rows(&[*tok as usize], &[*w], &rows_to_matrix_one(rows.row(i)));
            }
        }
        tapes.push(BlockTapeEc { sent, experts: expert_tapes });
        x = y;
    }

    let (loss, mut dy) = loss_and_grad(&x);
    let output = x;

    // ---- Backward ----
    let mut grads: Vec<Vec<ExpertGrads>> = (0..cfg.blocks)
        .map(|b| {
            cfg.owned_experts(state.rank)
                .map(|e| {
                    let local = e - cfg.owned_experts(state.rank).start;
                    let _ = e;
                    ExpertGrads::zeros_like(&state.experts[b][local])
                })
                .collect()
        })
        .collect();

    for b in (0..cfg.blocks).rev() {
        let tape = &tapes[b];
        // Send ∂L/∂(expert output) for every dispatched slot: w·dy[token].
        let chunks: Vec<Vec<u8>> = tape
            .sent
            .iter()
            .map(|slots| {
                let mut rows = Vec::with_capacity(slots.len());
                for (tok, _e, w) in slots {
                    let mut row = dy.row(*tok as usize).to_vec();
                    for v in &mut row {
                        *v *= *w;
                    }
                    rows.push(row);
                }
                tokens_to_bytes(slots, &rows_to_matrix(&rows, cfg.hidden_dim)).to_vec()
            })
            .collect();
        let received = all_to_all(comm, a2a_seq(iter, b, 2), chunks)?;
        let decoded: Vec<(Vec<Slot>, Matrix)> = received
            .into_iter()
            .map(|c| tokens_from_bytes(c.into()))
            .collect::<Result<_, _>>()?;

        // Expert backward over the full received batch; route dx home.
        let mut returns: Vec<(Vec<Slot>, Vec<Vec<f32>>)> =
            (0..world).map(|_| (Vec::new(), Vec::new())).collect();
        for tape_e in tape.experts.iter() {
            // Rebuild dY in the same order as the forward batch.
            let mut rows = Vec::with_capacity(tape_e.origins.len());
            for (src, slot) in &tape_e.origins {
                let (slots, mat) = &decoded[*src];
                let pos = slots
                    .iter()
                    .position(|s| s == slot)
                    .expect("backward slot must mirror forward slot");
                rows.push(mat.row(pos).to_vec());
            }
            let dy_e = rows_to_matrix(&rows, cfg.hidden_dim);
            let local = tape_e.expert - cfg.owned_experts(state.rank).start;
            let (g, dx_e) = state.experts[b][local].backward(&tape_e.cache, &dy_e);
            grads[b][local].accumulate(&g);
            for (i, (src, slot)) in tape_e.origins.iter().enumerate() {
                returns[*src].0.push(*slot);
                returns[*src].1.push(dx_e.row(i).to_vec());
            }
        }
        let chunks: Vec<Vec<u8>> = returns
            .iter()
            .map(|(slots, rows)| {
                tokens_to_bytes(slots, &rows_to_matrix(rows, cfg.hidden_dim)).to_vec()
            })
            .collect();
        let received = all_to_all(comm, a2a_seq(iter, b, 3), chunks)?;

        // dx = dy (residual) + returned expert input-gradients.
        let mut dx = dy.clone();
        for chunk in received {
            let (slots, rows) = tokens_from_bytes(chunk.into())?;
            for (i, (tok, _e, _w)) in slots.iter().enumerate() {
                dx.scatter_add_rows(&[*tok as usize], &[1.0], &rows_to_matrix_one(rows.row(i)));
            }
        }
        dy = dx;
    }

    // ---- Update ----
    for b in 0..cfg.blocks {
        for (local, g) in grads[b].iter().enumerate() {
            state.experts[b][local].apply(g, cfg.lr);
        }
    }
    barrier(comm, iter)?;
    Ok(IterOutput { output, loss })
}

fn rows_to_matrix(rows: &[Vec<f32>], cols: usize) -> Matrix {
    let mut data = Vec::with_capacity(rows.len() * cols);
    for r in rows {
        debug_assert_eq!(r.len(), cols);
        data.extend_from_slice(r);
    }
    Matrix::from_vec(rows.len(), cols, data)
}

fn rows_to_matrix_one(row: &[f32]) -> Matrix {
    Matrix::from_vec(1, row.len(), row.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_comm::runtime::run_workers;

    #[test]
    fn iteration_runs_and_losses_are_finite() {
        let cfg = ExecConfig::small();
        let out = run_workers(cfg.world(), |comm| {
            let mut state = WorkerState::init(&cfg, comm.rank());
            run_iteration(&comm, &mut state, 0).unwrap()
        });
        for o in &out {
            assert!(o.loss.is_finite() && o.loss > 0.0);
            assert_eq!(o.output.shape(), (cfg.tokens, cfg.hidden_dim));
        }
    }

    #[test]
    fn loss_decreases_over_iterations() {
        let cfg = ExecConfig::small();
        let losses = run_workers(cfg.world(), |comm| {
            let mut state = WorkerState::init(&cfg, comm.rank());
            (0..5).map(|i| run_iteration(&comm, &mut state, i).unwrap().loss).collect::<Vec<_>>()
        });
        for per_worker in losses {
            assert!(
                per_worker.last().unwrap() < per_worker.first().unwrap(),
                "loss did not decrease: {per_worker:?}"
            );
        }
    }

    #[test]
    fn updated_weights_agree_across_repeat_runs() {
        // Determinism: two independent runs produce identical weights.
        let cfg = ExecConfig::small();
        let run = || {
            run_workers(cfg.world(), |comm| {
                let mut state = WorkerState::init(&cfg, comm.rank());
                for i in 0..3 {
                    run_iteration(&comm, &mut state, i).unwrap();
                }
                state.experts
            })
        };
        let a = run();
        let b = run();
        for (wa, wb) in a.iter().zip(&b) {
            for (ba, bb) in wa.iter().zip(wb) {
                for (ea, eb) in ba.iter().zip(bb) {
                    assert_eq!(ea, eb);
                }
            }
        }
    }
}
