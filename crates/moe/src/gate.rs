//! The top-k softmax gate of an MoE block.
//!
//! For each token embedding the gate computes logits over all experts,
//! softmax-normalizes them, and routes the token to its `k` highest-scoring
//! experts with the (renormalized) softmax mass as combine weights. This
//! is the Switch/GShard-style gate the paper's models use.

use janus_tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// Routing decision for a batch of tokens.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Routing {
    /// Number of experts the gate routed over.
    pub num_experts: usize,
    /// For each token, the `k` chosen expert indices, best first.
    pub experts: Vec<Vec<usize>>,
    /// For each token, the combine weight of each chosen expert
    /// (renormalized to sum to 1).
    pub weights: Vec<Vec<f32>>,
}

impl Routing {
    /// Tokens routed to `expert`, as (token index, combine weight) pairs
    /// in token order — the dispatch list of the expert-centric paradigm
    /// and the per-expert compute batch of the data-centric one.
    pub fn tokens_for(&self, expert: usize) -> Vec<(usize, f32)> {
        let mut out = Vec::new();
        for (tok, (es, ws)) in self.experts.iter().zip(&self.weights).enumerate() {
            for (e, w) in es.iter().zip(ws) {
                if *e == expert {
                    out.push((tok, *w));
                }
            }
        }
        out
    }

    /// Histogram of token count per expert.
    pub fn histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.num_experts];
        for es in &self.experts {
            for &e in es {
                h[e] += 1;
            }
        }
        h
    }
}

/// A dense top-k gate: `logits = x · Wg`, softmax, take the top `k`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopKGate {
    /// Gate projection, `H × num_experts`.
    pub weight: Matrix,
    /// Fan-out `k`.
    pub top_k: usize,
}

impl TopKGate {
    /// Random gate for `num_experts` experts over `hidden_dim` features.
    pub fn new<R: Rng>(hidden_dim: usize, num_experts: usize, top_k: usize, rng: &mut R) -> Self {
        assert!(top_k >= 1 && top_k <= num_experts, "top_k out of range");
        let scale = (1.0 / hidden_dim as f32).sqrt();
        TopKGate {
            weight: Matrix::uniform(hidden_dim, num_experts, scale, rng),
            top_k,
        }
    }

    /// Route a batch and also compute the Switch-Transformer-style
    /// load-balancing auxiliary loss `E · Σ_e f_e · P_e`, where `f_e` is
    /// the fraction of dispatched token slots expert `e` received and
    /// `P_e` the mean router probability of `e`. The loss is 1.0 for a
    /// perfectly uniform router and grows as routing concentrates — the
    /// signal real MoE training uses to keep the expert load (and hence
    /// the paper's All-to-All imbalance) in check.
    pub fn route_with_aux(&self, x: &Matrix) -> (Routing, f32) {
        let (routing, p_sums) = self.route_fused(x);
        let num_experts = self.weight.cols();
        let tokens = x.rows().max(1);
        let hist = routing.histogram();
        let total_slots: usize = hist.iter().sum();
        let mut aux = 0.0f32;
        for e in 0..num_experts {
            let f_e = hist[e] as f32 / total_slots.max(1) as f32;
            let p_e = p_sums[e] / tokens as f32;
            aux += f_e * p_e;
        }
        (routing, aux * num_experts as f32)
    }

    /// Route a batch of token embeddings (`tokens × H`).
    pub fn route(&self, x: &Matrix) -> Routing {
        self.route_fused(x).0
    }

    /// The fused gate core: softmax each logit row **in place** (no
    /// second `tokens × E` allocation) and partial-select the top `k`
    /// without materializing and sorting all `E` indices per token.
    /// Also returns the per-expert probability column sums (accumulated
    /// in ascending token order, exactly as the unfused aux loop did)
    /// so [`route_with_aux`](Self::route_with_aux) gets its `P_e` for
    /// free from the same sweep.
    ///
    /// Bitwise contract: the in-place softmax replicates
    /// `janus_tensor::softmax_rows` op for op (max scan, `exp` and
    /// accumulate, divide), and the selection compares those exact
    /// probability values under the same total order as the full sort —
    /// `exp`/divide rounding can collapse logits that were distinct, so
    /// selecting on logits would *not* be equivalent.
    fn route_fused(&self, x: &Matrix) -> (Routing, Vec<f32>) {
        let num_experts = self.weight.cols();
        let mut probs = x.matmul(&self.weight);
        let mut p_sums = vec![0.0f32; num_experts];
        let mut experts = Vec::with_capacity(probs.rows());
        let mut weights = Vec::with_capacity(probs.rows());
        let mut sel: Vec<usize> = Vec::with_capacity(self.top_k);
        for t in 0..probs.rows() {
            let row = probs.row_mut(t);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
            // `sel` stays sorted under `rank` (probability descending,
            // ties broken by index so the routing is deterministic
            // across paradigms and machines), so the result is exactly
            // `sort_by(rank)` + truncate at O(E·k) instead of
            // O(E log E).
            sel.clear();
            for e in 0..num_experts {
                let pos = sel.partition_point(|&s| rank(row, s, e) == Ordering::Less);
                if sel.len() == self.top_k {
                    if pos == self.top_k {
                        continue;
                    }
                    sel.pop();
                }
                sel.insert(pos, e);
            }
            let mass: f32 = sel.iter().map(|&e| row[e]).sum();
            let w: Vec<f32> = sel.iter().map(|&e| row[e] / mass).collect();
            for (s, p) in p_sums.iter_mut().zip(row.iter()) {
                *s += *p;
            }
            experts.push(sel.clone());
            weights.push(w);
        }
        (
            Routing {
                num_experts,
                experts,
                weights,
            },
            p_sums,
        )
    }
}

/// Selection order of expert `a` vs `b` given a probability row: higher
/// probability ranks first, ties go to the smaller index. A total order
/// (`total_cmp`), so partial selection and a full sort agree exactly.
fn rank(row: &[f32], a: usize, b: usize) -> Ordering {
    row[b].total_cmp(&row[a]).then(a.cmp(&b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gate(k: usize) -> TopKGate {
        let mut rng = StdRng::seed_from_u64(11);
        TopKGate::new(8, 4, k, &mut rng)
    }

    #[test]
    fn routes_k_distinct_experts_per_token() {
        let g = gate(2);
        let mut rng = StdRng::seed_from_u64(5);
        let x = Matrix::uniform(10, 8, 1.0, &mut rng);
        let r = g.route(&x);
        assert_eq!(r.experts.len(), 10);
        for (es, ws) in r.experts.iter().zip(&r.weights) {
            assert_eq!(es.len(), 2);
            assert_ne!(es[0], es[1]);
            let sum: f32 = ws.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(ws[0] >= ws[1], "weights must be sorted best-first");
        }
    }

    #[test]
    fn histogram_counts_all_slots() {
        let g = gate(2);
        let mut rng = StdRng::seed_from_u64(6);
        let x = Matrix::uniform(25, 8, 1.0, &mut rng);
        let r = g.route(&x);
        assert_eq!(r.histogram().iter().sum::<usize>(), 25 * 2);
    }

    #[test]
    fn tokens_for_partitions_slots() {
        let g = gate(2);
        let mut rng = StdRng::seed_from_u64(7);
        let x = Matrix::uniform(12, 8, 1.0, &mut rng);
        let r = g.route(&x);
        let total: usize = (0..4).map(|e| r.tokens_for(e).len()).sum();
        assert_eq!(total, 12 * 2);
        // Weights in tokens_for match the routing table.
        for (tok, w) in r.tokens_for(0) {
            let pos = r.experts[tok].iter().position(|&e| e == 0).unwrap();
            assert_eq!(r.weights[tok][pos], w);
        }
    }

    #[test]
    fn k_equals_one_gives_unit_weights() {
        let g = gate(1);
        let mut rng = StdRng::seed_from_u64(8);
        let x = Matrix::uniform(6, 8, 1.0, &mut rng);
        let r = g.route(&x);
        for ws in &r.weights {
            assert_eq!(ws, &vec![1.0]);
        }
    }

    #[test]
    fn routing_is_deterministic() {
        let g = gate(2);
        let mut rng = StdRng::seed_from_u64(9);
        let x = Matrix::uniform(5, 8, 1.0, &mut rng);
        assert_eq!(g.route(&x), g.route(&x));
    }

    #[test]
    fn aux_loss_is_one_for_uniform_router_and_larger_when_skewed() {
        // A zero gate weight makes every expert equally likely: with
        // deterministic tie-breaking all slots land on the first k
        // experts, but the *probabilities* are uniform, so the Switch
        // loss reduces to E·Σ f_e/E = 1 whenever P is uniform... only if
        // f is a distribution: Σ f_e = 1 always, so aux = Σ f_e = 1.
        let g = TopKGate {
            weight: Matrix::zeros(8, 4),
            top_k: 1,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let x = Matrix::uniform(64, 8, 1.0, &mut rng);
        let (_, aux_uniform) = g.route_with_aux(&x);
        assert!(
            (aux_uniform - 1.0).abs() < 1e-5,
            "uniform router: {aux_uniform}"
        );

        // A heavily biased gate (one expert dominates) drives the loss
        // toward E.
        let mut w = Matrix::zeros(8, 4);
        for r in 0..8 {
            w[(r, 2)] = 50.0; // always prefer expert 2 for positive inputs
            w[(r, 0)] = -50.0;
        }
        let biased = TopKGate {
            weight: w,
            top_k: 1,
        };
        let ones = Matrix::from_vec(16, 8, vec![1.0; 16 * 8]);
        let (routing, aux_skewed) = biased.route_with_aux(&ones);
        assert_eq!(routing.histogram()[2], 16, "all tokens routed to expert 2");
        assert!(
            aux_skewed > 3.5,
            "skewed router must approach E = 4: {aux_skewed}"
        );
    }

    #[test]
    fn route_with_aux_routing_matches_plain_route() {
        let g = gate(2);
        let mut rng = StdRng::seed_from_u64(21);
        let x = Matrix::uniform(10, 8, 1.0, &mut rng);
        let (routing, aux) = g.route_with_aux(&x);
        assert_eq!(routing, g.route(&x));
        assert!(aux >= 1.0 - 1e-4, "Cauchy-Schwarz lower bound");
    }

    #[test]
    #[should_panic(expected = "top_k out of range")]
    fn top_k_validated() {
        let mut rng = StdRng::seed_from_u64(1);
        TopKGate::new(8, 4, 5, &mut rng);
    }

    /// The fused softmax + partial-select path must reproduce the
    /// unfused reference (softmax_rows, full sort, truncate) bit for
    /// bit — experts, weights, and the aux loss.
    #[test]
    fn fused_route_matches_unfused_reference_bitwise() {
        use janus_tensor::softmax_rows;
        let mut rng = StdRng::seed_from_u64(42);
        for &(num_experts, k) in &[(64usize, 2usize), (64, 8), (5, 5), (7, 1), (3, 2)] {
            let g = TopKGate::new(16, num_experts, k, &mut rng);
            let x = Matrix::uniform(33, 16, 1.0, &mut rng);
            let probs = softmax_rows(&x.matmul(&g.weight));
            let mut experts_ref = Vec::new();
            let mut weights_ref = Vec::new();
            for t in 0..probs.rows() {
                let row = probs.row(t);
                let mut idx: Vec<usize> = (0..num_experts).collect();
                idx.sort_by(|&a, &b| row[b].total_cmp(&row[a]).then(a.cmp(&b)));
                idx.truncate(k);
                let mass: f32 = idx.iter().map(|&e| row[e]).sum();
                weights_ref.push(idx.iter().map(|&e| row[e] / mass).collect::<Vec<f32>>());
                experts_ref.push(idx);
            }
            let (r, aux) = g.route_with_aux(&x);
            assert_eq!(r.experts, experts_ref, "E={num_experts} k={k}");
            for (got, want) in r.weights.iter().zip(&weights_ref) {
                for (gw, ww) in got.iter().zip(want) {
                    assert_eq!(gw.to_bits(), ww.to_bits(), "E={num_experts} k={k}");
                }
            }
            // Aux reference: the pre-fusion formula over the full
            // probability matrix.
            let hist = r.histogram();
            let total_slots: usize = hist.iter().sum();
            let tokens = x.rows().max(1);
            let mut aux_ref = 0.0f32;
            for e in 0..num_experts {
                let f_e = hist[e] as f32 / total_slots.max(1) as f32;
                let p_e: f32 =
                    (0..probs.rows()).map(|t| probs[(t, e)]).sum::<f32>() / tokens as f32;
                aux_ref += f_e * p_e;
            }
            aux_ref *= num_experts as f32;
            assert_eq!(aux.to_bits(), aux_ref.to_bits(), "E={num_experts} k={k}");
        }
    }

    #[test]
    fn fused_partial_select_breaks_ties_by_index() {
        // Zero gate weights make every probability exactly equal, so the
        // tie-break must hand every token the first k expert indices.
        let g = TopKGate {
            weight: Matrix::zeros(8, 16),
            top_k: 3,
        };
        let x = Matrix::from_vec(4, 8, vec![1.0; 32]);
        let r = g.route(&x);
        for es in &r.experts {
            assert_eq!(es, &vec![0, 1, 2]);
        }
    }
}
