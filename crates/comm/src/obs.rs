//! Hooks into the global `janus-obs` recorder.
//!
//! Wire-level traffic (spans + byte histograms) is recorded by the *base*
//! transports only ([`crate::local::LocalTransport`],
//! [`crate::tcp::TcpTransport`]), so stacked wrappers do not double-count
//! a message as it passes through. The wrappers record their own
//! protocol events instead: retransmits/acks/dedup for
//! [`crate::reliable::ReliableTransport`], injected faults for
//! [`crate::faulty::FaultyTransport`]. Every hook is a no-op costing one
//! relaxed atomic load while recording is disabled.

use crate::message::Message;
use janus_obs::{global, SpanGuard, SpanMeta};

/// Span + byte accounting around a wire-level send.
pub(crate) fn send_hook(rank: usize, to: usize, msg: &Message) -> Option<SpanGuard<'static>> {
    let rec = global();
    if !rec.enabled() {
        return None;
    }
    rec.count("janus_comm_sends_total", 1);
    rec.observe("janus_comm_send_bytes", msg.payload_len() as u64);
    rec.span(|| SpanMeta::new(format!("send/to{to}"), "transport", rank as u32, "comm"))
}

/// Span around a blocking receive wait.
pub(crate) fn recv_wait_hook(rank: usize) -> Option<SpanGuard<'static>> {
    global().span(|| SpanMeta::new("recv_wait", "transport", rank as u32, "comm"))
}

/// Byte accounting for one delivered message. Also used (without a
/// surrounding span) by the polling receive paths, which run far too
/// often to trace individually.
pub(crate) fn recv_hook(_rank: usize, msg: &Message) {
    let rec = global();
    if !rec.enabled() {
        return;
    }
    rec.count("janus_comm_recvs_total", 1);
    rec.observe("janus_comm_recv_bytes", msg.payload_len() as u64);
}

/// Counter + zero-duration marker for a protocol event (retransmit, ack,
/// injected fault, ...).
pub(crate) fn proto_event(rank: usize, counter: &'static str, name: impl FnOnce() -> String) {
    let rec = global();
    if !rec.enabled() {
        return;
    }
    rec.count(counter, 1);
    rec.instant(|| SpanMeta::new(name(), "transport", rank as u32, "comm"));
}

/// Counter-only protocol event (for per-message events like dedup that
/// would bloat the trace as markers).
pub(crate) fn proto_count(counter: &'static str) {
    let rec = global();
    if !rec.enabled() {
        return;
    }
    rec.count(counter, 1);
}
