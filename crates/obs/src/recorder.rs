//! The span/metrics recorder.
//!
//! A [`Recorder`] owns a clock, a span buffer, and a metrics registry.
//! Most code records into the process-global recorder ([`global`]), which
//! starts *disabled*: every instrumentation site first checks a single
//! relaxed atomic load and pays nothing else. Enabling is explicit
//! (`enable` / `enable_with_clock`), so the numerical engines stay
//! bitwise identical to un-instrumented builds unless a tool like
//! `repro trace` opts in.

use crate::clock::{Clock, RealClock};
use crate::metrics::{Histogram, Metrics};
use crate::trace::TraceEvent;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Identity of a span, built lazily only when recording is enabled.
#[derive(Debug, Clone)]
pub struct SpanMeta {
    /// Span name, e.g. `pull/b1/e3`.
    pub name: String,
    /// Category lane for the overlap report: `compute`, `comm`,
    /// `transport`, `reduce`, `iter`, ...
    pub cat: &'static str,
    /// Track (rank).
    pub pid: u32,
    /// Lane within the track, e.g. `b1` or `comm`.
    pub tid: String,
}

impl SpanMeta {
    pub fn new(
        name: impl Into<String>,
        cat: &'static str,
        pid: u32,
        tid: impl Into<String>,
    ) -> Self {
        SpanMeta {
            name: name.into(),
            cat,
            pid,
            tid: tid.into(),
        }
    }
}

struct RecorderInner {
    clock: Arc<dyn Clock>,
    events: Vec<TraceEvent>,
}

/// Span + metrics sink. See module docs.
pub struct Recorder {
    enabled: AtomicBool,
    inner: Mutex<RecorderInner>,
    metrics: Metrics,
}

impl Recorder {
    /// A disabled recorder with a real (wall) clock.
    pub fn new() -> Self {
        Recorder {
            enabled: AtomicBool::new(false),
            inner: Mutex::new(RecorderInner {
                clock: Arc::new(RealClock::new()),
                events: Vec::new(),
            }),
            metrics: Metrics::new(),
        }
    }

    /// Whether recording is on. This is the *only* cost instrumentation
    /// pays when disabled: one relaxed atomic load.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Start recording with a fresh real clock.
    pub fn enable(&self) {
        self.enable_with_clock(Arc::new(RealClock::new()));
    }

    /// Start recording, timing spans against `clock`. Clears any events
    /// and metrics from a previous recording session.
    pub fn enable_with_clock(&self, clock: Arc<dyn Clock>) {
        {
            let mut inner = self.inner.lock();
            inner.clock = clock;
            inner.events.clear();
        }
        self.metrics.reset();
        self.enabled.store(true, Ordering::SeqCst);
    }

    /// Stop recording. Buffered events stay available via
    /// [`Recorder::drain_events`].
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::SeqCst);
    }

    /// Current clock reading (µs). 0 when disabled.
    pub fn now_us(&self) -> u64 {
        if !self.enabled() {
            return 0;
        }
        self.inner.lock().clock.now_us()
    }

    /// Open a span. Returns `None` (for free) when disabled; the meta
    /// closure only runs when enabled. The span ends when the guard
    /// drops, or explicitly via [`SpanGuard::end`].
    #[inline]
    pub fn span(&self, meta: impl FnOnce() -> SpanMeta) -> Option<SpanGuard<'_>> {
        if !self.enabled() {
            return None;
        }
        let start_us = self.inner.lock().clock.now_us();
        Some(SpanGuard {
            recorder: self,
            meta: Some(meta()),
            start_us,
        })
    }

    /// Record an already-timed complete event.
    pub fn event(&self, meta: SpanMeta, ts_us: u64, dur_us: u64) {
        if !self.enabled() {
            return;
        }
        self.inner.lock().events.push(TraceEvent {
            name: meta.name,
            cat: meta.cat.to_string(),
            pid: meta.pid,
            tid: meta.tid,
            ts_us: ts_us as f64,
            dur_us: dur_us as f64,
        });
    }

    /// Record a zero-duration marker event at the current clock time.
    pub fn instant(&self, meta: impl FnOnce() -> SpanMeta) {
        if !self.enabled() {
            return;
        }
        let mut inner = self.inner.lock();
        let ts = inner.clock.now_us();
        let meta = meta();
        inner.events.push(TraceEvent {
            name: meta.name,
            cat: meta.cat.to_string(),
            pid: meta.pid,
            tid: meta.tid,
            ts_us: ts as f64,
            dur_us: 0.0,
        });
    }

    /// Add `v` to counter `name`. No-op when disabled.
    #[inline]
    pub fn count(&self, name: &str, v: u64) {
        if !self.enabled() {
            return;
        }
        self.metrics.counter(name).fetch_add(v, Ordering::Relaxed);
    }

    /// Record `v` into histogram `name`. No-op when disabled.
    #[inline]
    pub fn observe(&self, name: &str, v: u64) {
        if !self.enabled() {
            return;
        }
        self.metrics.histogram(name).observe(v);
    }

    /// Handle to a histogram regardless of enabled state (callers gate on
    /// [`Recorder::enabled`] themselves when caching handles).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.metrics.histogram(name)
    }

    /// Handle to a counter regardless of enabled state.
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        self.metrics.counter(name)
    }

    /// The metrics registry (for export).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Snapshot of every registered counter, sorted by name (see
    /// [`Metrics::counter_values`]).
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.metrics.counter_values()
    }

    /// Prometheus text dump of all metrics.
    pub fn prometheus_text(&self) -> String {
        self.metrics.prometheus_text()
    }

    /// Take all buffered events, leaving the buffer empty.
    pub fn drain_events(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.inner.lock().events)
    }

    /// Number of buffered events.
    pub fn event_count(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// Disable and clear events + metrics.
    pub fn reset(&self) {
        self.disable();
        self.inner.lock().events.clear();
        self.metrics.reset();
    }

    fn close_span(&self, meta: SpanMeta, start_us: u64) -> u64 {
        let mut inner = self.inner.lock();
        let end = inner.clock.now_us();
        let dur = end.saturating_sub(start_us);
        inner.events.push(TraceEvent {
            name: meta.name,
            cat: meta.cat.to_string(),
            pid: meta.pid,
            tid: meta.tid,
            ts_us: start_us as f64,
            dur_us: dur as f64,
        });
        dur
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

/// RAII guard for an open span; records a complete event on drop.
pub struct SpanGuard<'a> {
    recorder: &'a Recorder,
    meta: Option<SpanMeta>,
    start_us: u64,
}

impl SpanGuard<'_> {
    /// End the span now, returning its duration in microseconds (useful
    /// for feeding a latency histogram without reading the clock twice).
    pub fn end(mut self) -> u64 {
        let meta = self.meta.take().expect("span ended once");
        self.recorder.close_span(meta, self.start_us)
    }

    /// Start timestamp (µs).
    pub fn start_us(&self) -> u64 {
        self.start_us
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(meta) = self.meta.take() {
            self.recorder.close_span(meta, self.start_us);
        }
    }
}

/// The process-global recorder. Starts disabled; tools (`repro trace`,
/// tests) enable it explicitly. Instrumentation throughout the workspace
/// records here.
pub fn global() -> &'static Recorder {
    static GLOBAL: OnceLock<Recorder> = OnceLock::new();
    GLOBAL.get_or_init(Recorder::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::FakeClock;

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = Recorder::new();
        assert!(r.span(|| SpanMeta::new("x", "compute", 0, "t")).is_none());
        r.count("c", 5);
        r.observe("h", 5);
        assert_eq!(r.event_count(), 0);
        assert_eq!(r.metrics().counter_value("c"), 0);
        assert_eq!(r.prometheus_text(), "");
    }

    #[test]
    fn span_guard_records_complete_event() {
        let r = Recorder::new();
        let clock = Arc::new(FakeClock::new());
        r.enable_with_clock(clock.clone());
        {
            let g = r
                .span(|| SpanMeta::new("pull/b0/e1", "comm", 2, "b0"))
                .unwrap();
            clock.advance(150);
            drop(g);
        }
        let events = r.drain_events();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.name, "pull/b0/e1");
        assert_eq!(e.cat, "comm");
        assert_eq!(e.pid, 2);
        assert_eq!(e.tid, "b0");
        assert_eq!(e.ts_us, 0.0);
        assert_eq!(e.dur_us, 150.0);
    }

    #[test]
    fn explicit_end_returns_duration() {
        let r = Recorder::new();
        let clock = Arc::new(FakeClock::new());
        r.enable_with_clock(clock.clone());
        let g = r.span(|| SpanMeta::new("x", "compute", 0, "t")).unwrap();
        clock.advance(42);
        assert_eq!(g.end(), 42);
        assert_eq!(r.event_count(), 1);
    }

    #[test]
    fn counters_and_histograms_record_when_enabled() {
        let r = Recorder::new();
        r.enable_with_clock(Arc::new(FakeClock::new()));
        r.count("janus_x_total", 3);
        r.count("janus_x_total", 4);
        r.observe("janus_bytes", 128);
        assert_eq!(r.metrics().counter_value("janus_x_total"), 7);
        let text = r.prometheus_text();
        assert!(text.contains("janus_x_total 7"));
        assert!(text.contains("janus_bytes_count 1"));
        r.reset();
        assert!(!r.enabled());
        assert_eq!(r.event_count(), 0);
    }

    #[test]
    fn reenabling_clears_previous_session() {
        let r = Recorder::new();
        r.enable_with_clock(Arc::new(FakeClock::new()));
        r.count("c", 1);
        r.instant(|| SpanMeta::new("m", "iter", 0, "t"));
        assert_eq!(r.event_count(), 1);
        r.enable_with_clock(Arc::new(FakeClock::new()));
        assert_eq!(r.event_count(), 0);
        assert_eq!(r.metrics().counter_value("c"), 0);
    }

    #[test]
    fn global_recorder_is_a_singleton() {
        let a = global() as *const Recorder;
        let b = global() as *const Recorder;
        assert_eq!(a, b);
    }
}
