//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro lab [--only <glob>]... [--jobs N] [--seed N] [--verify]
//! repro list
//! repro [plan|table1|...|faults|crash|trace|all]... [--json]
//! repro bench [--check]
//! ```
//!
//! `repro lab` runs the experiment DAG: independent tasks in parallel
//! (bounded by `--jobs`), each emitting its artifacts plus a
//! reproducibility `manifest.json` and a `diagnostics.json` under
//! `artifacts/<task>/`. `--only` selects tasks by name or `tag/name`
//! glob (e.g. `--only 'ci/*'`, `--only 'fig*'`), closed over
//! dependencies. `--verify` re-runs each selected task from its
//! recorded manifest and fails on any bitwise difference in the
//! canonical (timing-masked) artifact digests.
//!
//! The experiment names (`fig12`, `faults`, ...) remain as thin aliases
//! that run the matching task serially; `all` runs the default graph.
//! Add `--json` to also dump each artifact's raw rows as JSON (for
//! EXPERIMENTS.md bookkeeping).
//!
//! `repro bench` runs the perf suite (compute + transport) and rewrites
//! the `BENCH_compute.json` / `BENCH_transport.json` baselines. With
//! `--check` it instead compares the fresh run against the committed
//! baselines and exits non-zero on a >10% regression in any gated
//! ratio; set `UPDATE_BENCH=1` to force a baseline refresh even with
//! `--check` (the CI perf shard runs `--check`, so refreshing baselines
//! is always an explicit, reviewed act).

use janus_bench::experiments::benchgate;
use janus_bench::lab::registry;
use janus_lab::{Dag, Executor, LabEnv, RunSummary, TaskStatus};
use std::collections::BTreeSet;

/// Where the lab writes artifacts, relative to the invocation directory.
const ARTIFACT_ROOT: &str = "artifacts";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dag = registry();
    let code = match args.first().map(String::as_str) {
        Some("lab") => run_lab(&dag, &args[1..]),
        Some("list") => {
            print_task_list(&dag);
            0
        }
        _ => run_legacy(&dag, &args),
    };
    std::process::exit(code);
}

/// `repro lab`: execute (or verify) the selected subgraph.
fn run_lab(dag: &Dag, args: &[String]) -> i32 {
    let mut only: Vec<String> = Vec::new();
    let mut jobs = janus_tensor::pool::threads().min(4);
    let mut seed = 0u64;
    let mut verify = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--only" => match it.next() {
                Some(glob) => only.push(glob.clone()),
                None => return usage("--only needs a glob argument"),
            },
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => jobs = n,
                None => return usage("--jobs needs a positive integer"),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => seed = n,
                None => return usage("--seed needs an integer"),
            },
            "--verify" => verify = true,
            other => return usage(&format!("unknown `repro lab` flag `{other}`")),
        }
    }
    let selected = if only.is_empty() {
        dag.default_set()
    } else {
        match dag.select(&only) {
            Ok(sel) => sel,
            Err(e) => {
                eprintln!("{e}");
                print_task_list(dag);
                return 2;
            }
        }
    };
    let exec = Executor::new(ARTIFACT_ROOT, jobs, seed, LabEnv::detect());
    let summary = if verify {
        exec.verify(dag, &selected)
    } else {
        exec.run(dag, &selected)
    };
    print_summary(if verify { "verify" } else { "run" }, &summary);
    i32::from(!summary.ok())
}

fn print_summary(mode: &str, summary: &RunSummary) {
    println!(
        "lab {mode}: {} ok, {} failed, {} skipped in {} ms",
        summary.count(TaskStatus::Ok),
        summary.count(TaskStatus::Failed),
        summary.count(TaskStatus::Skipped),
        summary.elapsed_ms
    );
    for o in &summary.outcomes {
        if o.status == TaskStatus::Failed {
            println!("  FAILED {}: {}", o.name, o.detail);
        }
    }
}

/// The registry-derived task listing (also the unknown-subcommand help).
fn print_task_list(dag: &Dag) {
    eprintln!("tasks (repro <name>, or repro lab --only <glob>):");
    for t in dag.tasks() {
        let mut notes = Vec::new();
        if !t.tags.is_empty() {
            notes.push(
                t.tags
                    .iter()
                    .map(|tag| format!("{tag}/{}", t.name))
                    .collect::<Vec<_>>()
                    .join(" "),
            );
        }
        if t.exclusive {
            notes.push("exclusive".to_string());
        }
        if !t.default_set {
            notes.push("not in default set".to_string());
        }
        if !t.deps.is_empty() {
            notes.push(format!("needs {}", t.deps.join(", ")));
        }
        if notes.is_empty() {
            eprintln!("  {}", t.name);
        } else {
            eprintln!("  {:<12} ({})", t.name, notes.join("; "));
        }
    }
    eprintln!("  all          (every default-set task, serially)");
    eprintln!("  bench        (compute + transport; --check gates vs committed baselines)");
}

fn usage(msg: &str) -> i32 {
    eprintln!("{msg}");
    eprintln!("usage: repro lab [--only <glob>]... [--jobs N] [--seed N] [--verify]");
    2
}

/// The pre-lab CLI: experiment names as serial aliases over the task
/// registry, plus the `bench` baseline/gate verb.
fn run_legacy(dag: &Dag, args: &[String]) -> i32 {
    let mut names: Vec<String> = args.to_vec();
    let json = names.iter().any(|a| a == "--json");
    let check = names.iter().any(|a| a == "--check");
    names.retain(|a| a != "--json" && a != "--check");
    if names.is_empty() || names.iter().any(|a| a == "all") {
        names = dag
            .topo_order(0)
            .into_iter()
            .filter(|i| dag.default_set().contains(i))
            .map(|i| dag.tasks()[i].name.clone())
            .collect();
    }

    let exec = Executor::new(ARTIFACT_ROOT, 1, 0, LabEnv::detect());
    for name in &names {
        let code = match name.as_str() {
            "bench" => run_bench(dag, &exec, check, json),
            "compute" | "transport" => {
                let code = run_alias(dag, &exec, name, json);
                if code == 0 {
                    promote_baseline(name);
                }
                code
            }
            _ => run_alias(dag, &exec, name, json),
        };
        if code != 0 {
            return code;
        }
    }
    0
}

/// Run one named task serially through the executor; with `--json`,
/// echo each JSON artifact as a compact `JSON[stem]: ...` line.
fn run_alias(dag: &Dag, exec: &Executor, name: &str, json: bool) -> i32 {
    let Some(idx) = dag.find(name) else {
        eprintln!("unknown experiment: {name}");
        print_task_list(dag);
        return 2;
    };
    let selected: BTreeSet<usize> = dag
        .select(&[name.to_string()])
        .expect("registered name selects");
    let summary = exec.run(dag, &selected);
    if !summary.ok() {
        print_summary("run", &summary);
        return 1;
    }
    if json {
        dump_artifacts(&dag.tasks()[idx].name);
    }
    0
}

/// `repro bench`: measure both perf suites; rewrite the root baselines,
/// or with `--check` gate against them (one noise retry) and fail on
/// regression.
fn run_bench(dag: &Dag, exec: &Executor, check: bool, json: bool) -> i32 {
    let update = std::env::var("UPDATE_BENCH").is_ok_and(|v| v == "1");
    if check && !update {
        let (_, _, gates) = benchgate::run_check();
        if !benchgate::print(&gates) {
            eprintln!(
                "perf gate failed: a gated ratio regressed more than {:.0}% \
                 below its committed baseline (UPDATE_BENCH=1 refreshes baselines \
                 after an intentional change)",
                benchgate::TOLERANCE * 100.0
            );
            return 1;
        }
        return 0;
    }
    for name in ["compute", "transport"] {
        let code = run_alias(dag, exec, name, json);
        if code != 0 {
            return code;
        }
        promote_baseline(name);
    }
    append_bench_history();
    0
}

/// Append this run's headline numbers to the tracked
/// `BENCH_history.json` log so perf trends survive baseline rewrites.
fn append_bench_history() {
    let read = |task: &str| {
        std::fs::read_to_string(
            std::path::Path::new(ARTIFACT_ROOT)
                .join(task)
                .join(format!("BENCH_{task}.json")),
        )
    };
    let (compute, transport) = match (read("compute"), read("transport")) {
        (Ok(c), Ok(t)) => (c, t),
        (c, t) => {
            eprintln!(
                "skipping BENCH_history.json: could not read fresh artifacts ({:?} / {:?})",
                c.err(),
                t.err()
            );
            return;
        }
    };
    match janus_bench::experiments::bench_history::append(
        "BENCH_history.json",
        &compute,
        &transport,
    ) {
        Ok(entries) => println!("appended to BENCH_history.json ({entries} entries)"),
        Err(e) => eprintln!("could not append BENCH_history.json: {e}"),
    }
}

/// Copy a perf task's artifact to the repo-root `BENCH_*.json` baseline
/// location — the tracked files the CI gate compares against.
fn promote_baseline(task: &str) {
    let file = format!("BENCH_{task}.json");
    let src = std::path::Path::new(ARTIFACT_ROOT).join(task).join(&file);
    match std::fs::copy(&src, &file) {
        Ok(_) => println!("wrote {file}"),
        Err(e) => eprintln!("could not refresh {file} from {}: {e}", src.display()),
    }
}

/// Echo every JSON artifact of `task` as a compact `JSON[stem]: ...`
/// line (the format EXPERIMENTS.md bookkeeping consumes).
fn dump_artifacts(task: &str) {
    let dir = std::path::Path::new(ARTIFACT_ROOT).join(task);
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return;
    };
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension().is_some_and(|x| x == "json")
                && p.file_name()
                    .is_some_and(|n| n != "manifest.json" && n != "diagnostics.json")
        })
        .collect();
    paths.sort();
    for path in paths {
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
            continue;
        };
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        // Artifacts are written pretty; the dump line is compact.
        match serde_json::from_str::<serde_json::Value>(&text) {
            Ok(v) => println!(
                "JSON[{stem}]: {}",
                serde_json::to_string(&v).expect("re-render parsed JSON")
            ),
            Err(_) => println!("JSON[{stem}]: {}", text.trim()),
        }
    }
}
