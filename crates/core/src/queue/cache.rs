//! The Inter-Node Scheduler's Cache Manager (paper §5.1.2).
//!
//! Every machine keeps one cache of experts pulled from other machines.
//! The first local worker to request an external expert performs the
//! fetch; concurrent requesters for the same expert block until that
//! fetch completes and then share the cached copy — so each machine pulls
//! each external expert at most once per iteration. At the end of an
//! iteration the cache is cleared ("the workers will clear the cache
//! because it is stale", §5.1.1).

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Key of a cached expert: (MoE block index, global expert index).
pub type ExpertKey = (usize, usize);

/// How long a [`CacheManager::get_or_fetch`] waiter trusts an in-flight
/// fetcher before concluding it died mid-fetch and promoting itself.
/// Healthy fetches complete in microseconds; this only fires when the
/// fetcher's worker is gone.
pub const FETCH_STALL: Duration = Duration::from_secs(5);

/// Cache effectiveness counters. The hierarchical mechanism's whole
/// point (§5.1.2) is `hits > 0` whenever multiple local workers need the
/// same external expert: every hit is one cross-machine pull deduped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Values fetched or inserted (each one a real cross-machine pull).
    pub fetches: u64,
    /// Lookups satisfied from the cache.
    pub hits: u64,
    /// Lookups that found nothing ready (first requests and timeouts).
    pub misses: u64,
}

enum Slot<V> {
    /// Some worker is fetching; others wait.
    Fetching,
    /// The expert is available.
    Ready(Arc<V>),
}

struct Inner<V> {
    epoch: u64,
    slots: HashMap<ExpertKey, Slot<V>>,
    stats: CacheStats,
}

/// A per-machine expert cache with single-flight fetching.
pub struct CacheManager<V> {
    inner: Mutex<Inner<V>>,
    ready: Condvar,
}

impl<V> Default for CacheManager<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> CacheManager<V> {
    /// Empty cache at epoch 0.
    pub fn new() -> Self {
        CacheManager {
            inner: Mutex::new(Inner {
                epoch: 0,
                slots: HashMap::new(),
                stats: CacheStats::default(),
            }),
            ready: Condvar::new(),
        }
    }

    fn record_hit(inner: &mut Inner<V>) {
        inner.stats.hits += 1;
        janus_obs::global().count("janus_cache_hits_total", 1);
    }

    fn record_miss(inner: &mut Inner<V>) {
        inner.stats.misses += 1;
        janus_obs::global().count("janus_cache_misses_total", 1);
    }

    fn record_fetch(inner: &mut Inner<V>) {
        inner.stats.fetches += 1;
        janus_obs::global().count("janus_cache_fetches_total", 1);
    }

    /// Get `key`, fetching it with `fetch` if absent. Exactly one caller
    /// runs `fetch` per key per epoch; everyone else blocks and shares
    /// the result. If the fetcher fails, one waiter is promoted to retry.
    /// Waiters never block unboundedly: a waiter whose in-flight fetcher
    /// goes silent for [`FETCH_STALL`] (it crashed mid-fetch and will
    /// never insert or remove the slot) promotes itself to fetcher
    /// instead of waiting on the condvar forever.
    pub fn get_or_fetch<E>(
        &self,
        key: ExpertKey,
        fetch: impl FnOnce() -> Result<V, E>,
    ) -> Result<Arc<V>, E> {
        self.get_or_fetch_with_stall(key, FETCH_STALL, fetch)
    }

    /// [`CacheManager::get_or_fetch`] with an explicit stall budget
    /// (how long a waiter trusts the current fetcher before taking over).
    pub fn get_or_fetch_with_stall<E>(
        &self,
        key: ExpertKey,
        stall: Duration,
        fetch: impl FnOnce() -> Result<V, E>,
    ) -> Result<Arc<V>, E> {
        {
            let mut inner = self.inner.lock();
            loop {
                match inner.slots.get(&key) {
                    Some(Slot::Ready(v)) => {
                        let v = v.clone();
                        Self::record_hit(&mut inner);
                        return Ok(v);
                    }
                    Some(Slot::Fetching) => {
                        let timed_out = self
                            .ready
                            .wait_until(&mut inner, Instant::now() + stall)
                            .timed_out();
                        // Re-check: the fetch may have succeeded, failed
                        // (slot removed), or the epoch may have moved.
                        if timed_out && matches!(inner.slots.get(&key), Some(Slot::Fetching)) {
                            // The fetcher stalled (likely dead). Take the
                            // fetch over; if the original ever completes,
                            // its insert simply overwrites ours.
                            Self::record_miss(&mut inner);
                            Self::record_fetch(&mut inner);
                            break;
                        }
                    }
                    None => {
                        inner.slots.insert(key, Slot::Fetching);
                        Self::record_miss(&mut inner);
                        Self::record_fetch(&mut inner);
                        break;
                    }
                }
            }
        }
        // Fetch outside the lock: other keys keep flowing meanwhile.
        match fetch() {
            Ok(v) => {
                let value = Arc::new(v);
                let mut inner = self.inner.lock();
                inner.slots.insert(key, Slot::Ready(value.clone()));
                self.ready.notify_all();
                Ok(value)
            }
            Err(e) => {
                let mut inner = self.inner.lock();
                inner.slots.remove(&key);
                self.ready.notify_all();
                Err(e)
            }
        }
    }

    /// Insert a value fetched out of band (e.g. by the designated local
    /// fetcher of this expert), waking any waiters.
    pub fn insert(&self, key: ExpertKey, value: V) -> Arc<V> {
        let value = Arc::new(value);
        let mut inner = self.inner.lock();
        Self::record_fetch(&mut inner);
        inner.slots.insert(key, Slot::Ready(value.clone()));
        self.ready.notify_all();
        value
    }

    /// Peek without fetching; counts as a hit when present, a miss
    /// otherwise.
    pub fn get(&self, key: ExpertKey) -> Option<Arc<V>> {
        let mut inner = self.inner.lock();
        match inner.slots.get(&key) {
            Some(Slot::Ready(v)) => {
                let v = v.clone();
                Self::record_hit(&mut inner);
                Some(v)
            }
            _ => {
                Self::record_miss(&mut inner);
                None
            }
        }
    }

    /// Block until `key` is ready or `timeout` elapses, whichever comes
    /// first; `Some` counts as a hit. The readiness check and the wait
    /// share one lock acquisition, so an insert from a sibling worker
    /// cannot slip between them unnoticed — this is the event-driven
    /// wait the engines use instead of fixed-interval polling.
    pub fn wait_for(&self, key: ExpertKey, timeout: Duration) -> Option<Arc<V>> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            if let Some(Slot::Ready(v)) = inner.slots.get(&key) {
                let v = v.clone();
                Self::record_hit(&mut inner);
                return Some(v);
            }
            if self.ready.wait_until(&mut inner, deadline).timed_out() {
                Self::record_miss(&mut inner);
                return None;
            }
        }
    }

    /// End-of-iteration invalidation: drop every cached expert and bump
    /// the epoch. Stale experts can never leak into the next iteration.
    pub fn clear_for_next_iteration(&self) {
        let mut inner = self.inner.lock();
        inner.slots.clear();
        inner.epoch += 1;
        self.ready.notify_all();
    }

    /// Current epoch (iterations completed).
    pub fn epoch(&self) -> u64 {
        self.inner.lock().epoch
    }

    /// Effectiveness counters accumulated since construction.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn second_get_hits_cache() {
        let cache: CacheManager<Vec<u8>> = CacheManager::new();
        let fetched = AtomicUsize::new(0);
        let fetch = || -> Result<Vec<u8>, ()> {
            fetched.fetch_add(1, Ordering::SeqCst);
            Ok(vec![1, 2, 3])
        };
        let a = cache.get_or_fetch((0, 5), fetch).unwrap();
        let b = cache
            .get_or_fetch((0, 5), || -> Result<Vec<u8>, ()> { panic!("must hit") })
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(fetched.load(Ordering::SeqCst), 1);
        assert_eq!(
            cache.stats(),
            CacheStats {
                fetches: 1,
                hits: 1,
                misses: 1,
            }
        );
    }

    #[test]
    fn distinct_keys_fetch_separately() {
        let cache: CacheManager<u32> = CacheManager::new();
        cache.get_or_fetch((0, 1), || Ok::<_, ()>(10)).unwrap();
        cache.get_or_fetch((1, 1), || Ok::<_, ()>(20)).unwrap();
        assert_eq!(*cache.get((0, 1)).unwrap(), 10);
        assert_eq!(*cache.get((1, 1)).unwrap(), 20);
        // Two distinct fetches; the two successful peeks count as hits.
        assert_eq!(
            cache.stats(),
            CacheStats {
                fetches: 2,
                hits: 2,
                misses: 2,
            }
        );
    }

    #[test]
    fn concurrent_requesters_share_one_fetch() {
        let cache: Arc<CacheManager<u64>> = Arc::new(CacheManager::new());
        let fetches = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = cache.clone();
            let fetches = fetches.clone();
            handles.push(std::thread::spawn(move || {
                *cache
                    .get_or_fetch((2, 7), || {
                        fetches.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        Ok::<_, ()>(99)
                    })
                    .unwrap()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 99);
        }
        assert_eq!(fetches.load(Ordering::SeqCst), 1, "single-flight violated");
    }

    #[test]
    fn failed_fetch_promotes_a_waiter() {
        let cache: Arc<CacheManager<u64>> = Arc::new(CacheManager::new());
        let attempts = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cache = cache.clone();
            let attempts = attempts.clone();
            handles.push(std::thread::spawn(move || {
                cache.get_or_fetch((0, 0), || {
                    let n = attempts.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    if n == 0 {
                        Err("transient")
                    } else {
                        Ok(7)
                    }
                })
            }));
        }
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // At least one failure surfaced to its fetcher; everyone else got 7.
        let ok = results.iter().filter(|r| r.is_ok()).count();
        assert!(ok >= 3, "{results:?}");
        assert_eq!(*cache.get((0, 0)).unwrap(), 7);
    }

    /// Regression for the crash-tolerance work: a fetcher that dies
    /// mid-fetch used to leave every waiter blocked on the condvar
    /// forever. Now a waiter promotes itself after the stall budget.
    #[test]
    fn waiter_promotes_itself_when_the_fetcher_stalls() {
        let cache: Arc<CacheManager<u32>> = Arc::new(CacheManager::new());
        // Simulate a crashed fetcher: the slot is Fetching but nobody
        // will ever complete it.
        {
            let mut inner = cache.inner.lock();
            inner.slots.insert((0, 0), Slot::Fetching);
        }
        let start = std::time::Instant::now();
        let v = cache
            .get_or_fetch_with_stall((0, 0), std::time::Duration::from_millis(20), || {
                Ok::<_, ()>(11)
            })
            .unwrap();
        assert_eq!(*v, 11);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "promotion must not wait out the default budget"
        );
    }

    #[test]
    fn wait_for_wakes_on_insert_and_times_out_when_absent() {
        let cache: Arc<CacheManager<u32>> = Arc::new(CacheManager::new());
        assert!(cache
            .wait_for((0, 0), std::time::Duration::from_millis(1))
            .is_none());
        let inserter = {
            let cache = cache.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(5));
                cache.insert((0, 0), 42);
            })
        };
        let v = cache.wait_for((0, 0), std::time::Duration::from_secs(5));
        assert_eq!(*v.unwrap(), 42);
        inserter.join().unwrap();
    }

    #[test]
    fn clear_invalidates_and_bumps_epoch() {
        let cache: CacheManager<u32> = CacheManager::new();
        cache.get_or_fetch((0, 0), || Ok::<_, ()>(1)).unwrap();
        assert!(cache.get((0, 0)).is_some());
        cache.clear_for_next_iteration();
        assert!(cache.get((0, 0)).is_none());
        assert_eq!(cache.epoch(), 1);
        // Refetch after clear counts as a new fetch.
        cache.get_or_fetch((0, 0), || Ok::<_, ()>(2)).unwrap();
        assert_eq!(*cache.get((0, 0)).unwrap(), 2);
    }
}
