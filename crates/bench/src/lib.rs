//! Benchmark harness regenerating every table and figure of the Janus
//! paper's evaluation (§7) on the discrete-event cluster simulator.
//!
//! Each experiment module exposes `run()` returning structured rows and
//! `print(&rows)` emitting the same table/series the paper reports, with
//! the paper's published numbers alongside for comparison. The `repro`
//! binary drives them all:
//!
//! ```text
//! cargo run --release -p janus-bench --bin repro -- all
//! cargo run --release -p janus-bench --bin repro -- fig12 fig14
//! ```
//!
//! The Criterion benches under `benches/` wrap the same experiment code
//! at reduced scale, timing the harness itself.

pub mod experiments;
pub mod lab;
pub mod table;

use janus_topology::{Cluster, ClusterSpec};

/// The paper's evaluation machines: `n` machines × 8 A100s.
pub fn paper_cluster(machines: usize) -> Cluster {
    ClusterSpec::a100(machines, 8).build()
}
