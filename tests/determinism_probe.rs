//! Training-level determinism: run-to-run and across thread counts.

use janus::core::exec::model::ExecConfig;
use janus::core::exec::trainer::{
    train_data_centric, train_expert_centric, train_unified, TrainRun,
};
use janus::tensor::{pool, simd};

fn cfg() -> ExecConfig {
    ExecConfig {
        machines: 2,
        gpus_per_machine: 2,
        hidden_dim: 8,
        blocks: 2,
        experts: 8,
        experts_per_block: vec![],
        top_k: 2,
        tokens: 12,
        seed: 99,
        lr: 0.03,
    }
}

fn assert_runs_identical(a: &TrainRun, b: &TrainRun, what: &str) {
    assert_eq!(
        a.losses, b.losses,
        "{what}: losses differ:\n{:?}\n{:?}",
        a.losses, b.losses
    );
    for (ra, rb) in a.experts.iter().zip(&b.experts) {
        for (ba, bb) in ra.iter().zip(rb) {
            for (ea, eb) in ba.iter().zip(bb) {
                assert_eq!(ea.w1.max_abs_diff(&eb.w1), 0.0, "{what}: w1 differs");
                assert_eq!(ea.w2.max_abs_diff(&eb.w2), 0.0, "{what}: w2 differs");
            }
        }
    }
}

/// The acceptance criterion of the parallel substrate: training under
/// both paradigms is bitwise identical whether the pool runs one thread
/// or many. Expert compute parallelises across tasks, but every combine
/// happens in expert-ascending order on the worker thread, so thread
/// count can never reorder a float reduction.
#[test]
fn training_is_bitwise_identical_across_thread_counts() {
    let cfg = cfg();
    let mixed = ExecConfig::mixed_paradigms();
    pool::set_threads(1);
    let dc_1 = train_data_centric(&cfg, 3);
    let ec_1 = train_expert_centric(&cfg, 3);
    let un_1 = train_unified(&mixed, 3);
    for threads in [2usize, 8] {
        pool::set_threads(threads);
        let dc_n = train_data_centric(&cfg, 3);
        let ec_n = train_expert_centric(&cfg, 3);
        let un_n = train_unified(&mixed, 3);
        assert_runs_identical(&dc_1, &dc_n, &format!("data-centric @ {threads} threads"));
        assert_runs_identical(&ec_1, &ec_n, &format!("expert-centric @ {threads} threads"));
        assert_runs_identical(&un_1, &un_n, &format!("unified @ {threads} threads"));
    }
    pool::set_threads(0);
}

/// The AVX2 kernels keep the scalar kernels' reduction order, so forcing
/// dispatch scalar or SIMD (the in-process `JANUS_SIMD`) must not move a
/// single bit of any paradigm's training run — at any thread count.
#[test]
fn training_is_bitwise_identical_with_simd_on_and_off() {
    let cfg = cfg();
    let mixed = ExecConfig::mixed_paradigms();
    simd::set_forced(Some(false));
    let dc_scalar = train_data_centric(&cfg, 3);
    let ec_scalar = train_expert_centric(&cfg, 3);
    let un_scalar = train_unified(&mixed, 3);
    simd::set_forced(Some(true));
    for threads in [1usize, 4] {
        pool::set_threads(threads);
        let dc_simd = train_data_centric(&cfg, 3);
        let ec_simd = train_expert_centric(&cfg, 3);
        let un_simd = train_unified(&mixed, 3);
        let tag = format!("simd on vs off @ {threads} threads");
        assert_runs_identical(&dc_scalar, &dc_simd, &format!("data-centric, {tag}"));
        assert_runs_identical(&ec_scalar, &ec_simd, &format!("expert-centric, {tag}"));
        assert_runs_identical(&un_scalar, &un_simd, &format!("unified, {tag}"));
    }
    simd::set_forced(None);
    pool::set_threads(0);
}

#[test]
fn dc_is_bitwise_deterministic_run_to_run() {
    let cfg = cfg();
    let a = train_data_centric(&cfg, 3);
    let b = train_data_centric(&cfg, 3);
    assert_runs_identical(&a, &b, "run-to-run");
}
