//! Bitwise-equivalence properties of the blocked compute substrate.
//!
//! The tiled kernels and their row-split parallel variants must produce
//! *bit-identical* output to [`matmul_reference`] — not merely close —
//! for every shape (including remainder tiles in every dimension) and
//! every thread count. This is what lets the training engines run on any
//! `JANUS_THREADS` setting without perturbing a single weight.

use janus_tensor::{matmul_reference, pool, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blocked NN/TN/NT kernels equal the scalar reference bitwise for
    /// random shapes straddling the 4×8 tile grid and random contents.
    #[test]
    fn blocked_kernels_match_reference_bitwise(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::uniform(m, k, 2.0, &mut rng);
        let b = Matrix::uniform(k, n, 2.0, &mut rng);
        let reference = matmul_reference(&a, &b);

        prop_assert_eq!(a.matmul(&b).max_abs_diff(&reference), 0.0);
        // TN path: (aᵀ)ᵀ·b from the k×m operand.
        prop_assert_eq!(a.transpose().matmul_tn(&b).max_abs_diff(&reference), 0.0);
        // NT path: a·(bᵀ)ᵀ from the n×k operand.
        prop_assert_eq!(a.matmul_nt(&b.transpose()).max_abs_diff(&reference), 0.0);
    }

    /// The `*_into` variants write the same bits as their allocating
    /// twins into a dirty, wrong-shaped buffer.
    #[test]
    fn into_variants_match_allocating_variants(
        m in 1usize..16,
        k in 1usize..16,
        n in 1usize..16,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::uniform(m, k, 1.0, &mut rng);
        let b = Matrix::uniform(k, n, 1.0, &mut rng);
        let mut out = Matrix::from_vec(1, 3, vec![f32::NAN; 3]);

        a.matmul_into(&b, &mut out);
        prop_assert_eq!(out.max_abs_diff(&a.matmul(&b)), 0.0);
        a.transpose().matmul_tn_into(&b, &mut out);
        prop_assert_eq!(out.max_abs_diff(&a.transpose().matmul_tn(&b)), 0.0);
        a.matmul_nt_into(&b.transpose(), &mut out);
        prop_assert_eq!(out.max_abs_diff(&a.matmul_nt(&b.transpose())), 0.0);
    }
}

/// Above the parallel threshold the row-split pool engages; sweeping the
/// thread count (the in-process equivalent of `JANUS_THREADS=1,2,8`)
/// must not change one bit of any product shape.
#[test]
fn parallel_split_is_bitwise_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(7);
    // 96·160·96 ≈ 1.5M multiply-adds — past PAR_MIN_MULADDS, and not a
    // multiple of the tile sizes, so chunk boundaries fall mid-tile.
    let a = Matrix::uniform(96, 160, 1.0, &mut rng);
    let b = Matrix::uniform(160, 96, 1.0, &mut rng);
    let at = a.transpose();
    let bt = b.transpose();
    let reference = matmul_reference(&a, &b);

    for threads in [1usize, 2, 8] {
        pool::set_threads(threads);
        assert_eq!(
            a.matmul(&b).max_abs_diff(&reference),
            0.0,
            "NN diverged at {threads} threads"
        );
        assert_eq!(
            at.matmul_tn(&b).max_abs_diff(&reference),
            0.0,
            "TN diverged at {threads} threads"
        );
        assert_eq!(
            a.matmul_nt(&bt).max_abs_diff(&reference),
            0.0,
            "NT diverged at {threads} threads"
        );
    }
    pool::set_threads(0);
}
