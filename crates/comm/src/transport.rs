//! The transport abstraction and its error type.

use crate::message::Message;
use std::fmt;
use std::io;

/// Errors raised by transports and the layers above them.
#[derive(Debug)]
pub enum CommError {
    /// Underlying socket/channel failure.
    Io(io::Error),
    /// A peer hung up while messages were still expected.
    Disconnected,
    /// A frame arrived but could not be parsed.
    Decode(String),
    /// A frame exceeded the configured maximum size (corrupt length
    /// header or a hostile peer).
    FrameTooLarge {
        /// Claimed frame length.
        len: usize,
        /// Configured ceiling.
        max: usize,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Io(e) => write!(f, "io error: {e}"),
            CommError::Disconnected => write!(f, "peer disconnected"),
            CommError::Decode(msg) => write!(f, "decode error: {msg}"),
            CommError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds maximum {max}")
            }
        }
    }
}

impl std::error::Error for CommError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CommError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CommError {
    fn from(e: io::Error) -> Self {
        CommError::Io(e)
    }
}

/// Rank-addressed, reliable, ordered message delivery between the members
/// of a fixed-size world. Implementations: [`crate::local::LocalTransport`]
/// (crossbeam channels) and [`crate::tcp::TcpTransport`] (length-prefixed
/// frames over `std::net`).
pub trait Transport: Send {
    /// This endpoint's rank, in `0..world_size`.
    fn rank(&self) -> usize;

    /// Number of endpoints in the mesh.
    fn world_size(&self) -> usize;

    /// Send a message to `to`. Sending to self is allowed and loops back.
    fn send(&self, to: usize, msg: Message) -> Result<(), CommError>;

    /// Block until the next message arrives, returning `(from, message)`.
    fn recv(&self) -> Result<(usize, Message), CommError>;

    /// Non-blocking receive: `Ok(None)` when no message is waiting.
    fn try_recv(&self) -> Result<Option<(usize, Message)>, CommError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = CommError::FrameTooLarge { len: 10, max: 5 };
        assert!(e.to_string().contains("10"));
        assert!(CommError::Disconnected.to_string().contains("disconnected"));
        let io_err = CommError::from(io::Error::other("boom"));
        assert!(io_err.to_string().contains("boom"));
        assert!(std::error::Error::source(&io_err).is_some());
        assert!(std::error::Error::source(&CommError::Disconnected).is_none());
    }
}
