//! Counter / histogram registry with Prometheus text-format export.
//!
//! Metrics are keyed by name in a `BTreeMap` behind a mutex; handles are
//! `Arc`s of atomics, so after registration increments are lock-free.
//! Call sites that fire per-message simply go through the registry each
//! time — the map is only consulted when recording is enabled, and the
//! lock is held for a lookup only.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of power-of-two histogram buckets: `le` bounds 1, 2, 4, ...,
/// 2^(BUCKETS-1), plus an implicit `+Inf`.
const BUCKETS: usize = 32;

/// Power-of-two bucketed histogram of `u64` samples (µs or bytes).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    pub fn observe(&self, value: u64) {
        // Bucket i covers values <= 2^i; values above the last bound land
        // in the implicit +Inf bucket (counted via `count`).
        let idx = (64 - u64::leading_zeros(value.max(1)) as usize).saturating_sub(1)
            + usize::from(!value.is_power_of_two() && value > 1);
        if idx < BUCKETS {
            self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        }
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Nearest-rank quantile over the bucketed samples: the `le` bound
    /// (`2^i`) of the bucket holding the rank-`⌈q·n⌉` sample, so the
    /// true quantile is `≤` the returned value. Returns 0 when empty
    /// and `u64::MAX` when the rank falls in the implicit `+Inf`
    /// bucket.
    pub fn quantile_le(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut cumulative = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cumulative += b.load(Ordering::Relaxed);
            if cumulative >= rank {
                return 1u64 << i;
            }
        }
        u64::MAX
    }
}

/// Named counter / histogram registry.
pub struct Metrics {
    inner: Mutex<MetricsInner>,
}

#[derive(Default)]
struct MetricsInner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

impl Metrics {
    pub fn new() -> Self {
        Metrics {
            inner: Mutex::new(MetricsInner::default()),
        }
    }

    /// Handle to the counter `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        let mut inner = self.inner.lock();
        inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone()
    }

    /// Handle to the histogram `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Snapshot of every registered counter, sorted by name. This is the
    /// export the lab's `diagnostics.json` embeds per artifact: a stable,
    /// machine-readable record of what the observability layer saw while
    /// the artifact was produced.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.inner
            .lock()
            .counters
            .iter()
            .map(|(name, c)| (name.clone(), c.load(Ordering::Relaxed)))
            .collect()
    }

    /// Current value of counter `name` (0 when unregistered).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .counters
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Drop every registered metric.
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.counters.clear();
        inner.histograms.clear();
    }

    /// Render all metrics in the Prometheus text exposition format,
    /// sorted by metric name so output is deterministic.
    pub fn prometheus_text(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::new();
        for (name, c) in &inner.counters {
            out.push_str(&format!("# TYPE {name} counter\n"));
            out.push_str(&format!("{name} {}\n", c.load(Ordering::Relaxed)));
        }
        for (name, h) in &inner.histograms {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for (i, b) in h.buckets.iter().enumerate() {
                let n = b.load(Ordering::Relaxed);
                cumulative += n;
                // Skip empty high buckets to keep the dump readable, but
                // always emit at least the first bucket.
                if n > 0 || i == 0 {
                    out.push_str(&format!(
                        "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                        1u64 << i
                    ));
                }
            }
            out.push_str(&format!(
                "{name}_bucket{{le=\"+Inf\"}} {}\n",
                h.count.load(Ordering::Relaxed)
            ));
            out.push_str(&format!("{name}_sum {}\n", h.sum.load(Ordering::Relaxed)));
            out.push_str(&format!(
                "{name}_count {}\n",
                h.count.load(Ordering::Relaxed)
            ));
        }
        out
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_export() {
        let m = Metrics::new();
        m.counter("janus_b_total").fetch_add(2, Ordering::Relaxed);
        m.counter("janus_a_total").fetch_add(1, Ordering::Relaxed);
        m.counter("janus_b_total").fetch_add(3, Ordering::Relaxed);
        assert_eq!(m.counter_value("janus_b_total"), 5);
        assert_eq!(m.counter_value("janus_missing"), 0);
        assert_eq!(
            m.counter_values(),
            vec![
                ("janus_a_total".to_string(), 1),
                ("janus_b_total".to_string(), 5)
            ]
        );
        let text = m.prometheus_text();
        // Sorted by name: a before b.
        let a = text.find("janus_a_total 1").unwrap();
        let b = text.find("janus_b_total 5").unwrap();
        assert!(a < b);
        assert!(text.contains("# TYPE janus_a_total counter"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::new();
        let h = m.histogram("janus_lat_us");
        h.observe(1); // le=1
        h.observe(3); // le=4
        h.observe(4); // le=4
        h.observe(1000); // le=1024
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1008);
        let text = m.prometheus_text();
        assert!(text.contains("janus_lat_us_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("janus_lat_us_bucket{le=\"4\"} 3\n"));
        assert!(text.contains("janus_lat_us_bucket{le=\"1024\"} 4\n"));
        assert!(text.contains("janus_lat_us_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("janus_lat_us_sum 1008\n"));
        assert!(text.contains("janus_lat_us_count 4\n"));
    }

    #[test]
    fn quantile_le_walks_cumulative_buckets() {
        let m = Metrics::new();
        let h = m.histogram("h");
        assert_eq!(h.quantile_le(0.5), 0); // empty
        h.observe(1); // le=1
        h.observe(3); // le=4
        h.observe(4); // le=4
        h.observe(1000); // le=1024
        assert_eq!(h.quantile_le(0.25), 1);
        assert_eq!(h.quantile_le(0.50), 4);
        assert_eq!(h.quantile_le(0.75), 4);
        assert_eq!(h.quantile_le(0.99), 1024);
        assert_eq!(h.quantile_le(1.0), 1024);
        // A sample beyond the last bound lands in +Inf.
        h.observe(u64::MAX);
        assert_eq!(h.quantile_le(1.0), u64::MAX);
    }

    #[test]
    fn zero_observation_lands_in_first_bucket() {
        let m = Metrics::new();
        let h = m.histogram("h");
        h.observe(0);
        let text = m.prometheus_text();
        assert!(text.contains("h_bucket{le=\"1\"} 1\n"));
    }

    #[test]
    fn reset_clears_registrations() {
        let m = Metrics::new();
        m.counter("c").fetch_add(1, Ordering::Relaxed);
        m.reset();
        assert_eq!(m.counter_value("c"), 0);
        assert_eq!(m.prometheus_text(), "");
    }
}
