//! Quickstart: simulate one MoE-BERT training iteration under both
//! paradigms and print what Janus changes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use janus::core::sim::engine::{simulate_iteration, EngineOpts};
use janus::moe::config::ModelPreset;
use janus::moe::traffic::r_for_block;
use janus::topology::ClusterSpec;

fn main() {
    // The paper's evaluation platform: 4 machines × 8 A100s.
    let cluster = ClusterSpec::a100(4, 8).build();
    let model = ModelPreset::MoeBert.config(32);

    // Step 1: the analytic gain metric that drives Janus's paradigm
    // choice (paper §5.1.3): R = BSk / (4nHE).
    let block = model.moe_blocks()[0];
    let r = r_for_block(&model, block, 4, 8);
    println!("MoE-BERT on 32 GPUs: R = {r:.2} (R > 1 ⇒ move experts, not tokens)\n");

    // Step 2: simulate one iteration the old way (All-to-All) and the
    // Janus way (pull experts, hierarchical cache, topology-aware
    // priorities, prefetch).
    let ec = simulate_iteration(cluster.clone(), model.clone(), &EngineOpts::tutel())
        .expect("expert-centric simulation");
    let janus =
        simulate_iteration(cluster, model, &EngineOpts::default()).expect("janus simulation");

    println!("expert-centric (Tutel-style):");
    println!("  iteration time     : {:>8.1} ms", ec.iter_time * 1e3);
    println!(
        "  time in All-to-All : {:>8.1} ms ({:.0}%)",
        ec.comm_time * 1e3,
        ec.comm_share() * 100.0
    );
    println!(
        "  cross-node traffic : {:>8.2} GiB/machine",
        ec.cross_node_bytes_per_machine / (1u64 << 30) as f64
    );

    println!("\njanus (data-centric, unified):");
    println!("  iteration time     : {:>8.1} ms", janus.iter_time * 1e3);
    println!("  fetch stall        : {:>8.1} ms", janus.comm_time * 1e3);
    println!(
        "  cross-node traffic : {:>8.2} GiB/machine",
        janus.cross_node_bytes_per_machine / (1u64 << 30) as f64
    );

    println!(
        "\nspeedup: {:.2}×, traffic reduction: {:.1}×",
        ec.iter_time / janus.iter_time,
        ec.cross_node_bytes_per_machine / janus.cross_node_bytes_per_machine
    );
}
