//! Property tests on the serving plane's two pure algorithms: the
//! continuous batcher (no starvation, per-client FIFO, token budget)
//! and the replica apportionment (deterministic, complete, monotone in
//! load).

use janus_serve::batcher::{Batcher, RequestId};
use janus_serve::replica::{replica_counts, ReplicaPlan};
use proptest::prelude::*;

type Emission = (Vec<(usize, RequestId)>, Vec<Vec<(usize, RequestId)>>);

/// Drive a batcher over an arbitrary arrival interleaving: `arrivals`
/// gives, per engine step, how many queued requests are admitted before
/// the step's batch is drawn. Returns the concatenated emission order.
fn drive(budget: usize, sizes: &[usize], arrivals: &[usize]) -> Emission {
    let mut b = Batcher::new(budget);
    let mut next = 0usize;
    let mut emitted = Vec::new();
    let mut batches = Vec::new();
    let mut steps = arrivals.iter().copied().chain(std::iter::repeat(0));
    while next < sizes.len() || b.depth() > 0 {
        let n = steps.next().unwrap();
        for _ in 0..n.min(sizes.len() - next) {
            let id = RequestId {
                client: next % 3,
                seq: (next / 3) as u64,
            };
            b.admit(next, id, sizes[next]);
            next += 1;
        }
        let batch = b.next_batch();
        if !batch.is_empty() {
            emitted.extend(batch.iter().copied());
            batches.push(batch);
        }
        // Liveness backstop: if nothing arrived and nothing was emitted
        // the queue was empty; force remaining arrivals forward.
        if n == 0 && next < sizes.len() && b.depth() == 0 {
            let id = RequestId {
                client: next % 3,
                seq: (next / 3) as u64,
            };
            b.admit(next, id, sizes[next]);
            next += 1;
        }
    }
    (emitted, batches)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under arbitrary arrival interleavings the batcher emits every
    /// request exactly once, in admission order — which implies both
    /// no-starvation and per-client FIFO.
    #[test]
    fn batcher_never_starves_and_preserves_fifo(
        budget in 1usize..20,
        sizes in prop::collection::vec(1usize..8, 1..40),
        arrivals in prop::collection::vec(0usize..5, 0..40),
    ) {
        let (emitted, batches) = drive(budget, &sizes, &arrivals);
        // Exactly-once, in admission order.
        prop_assert_eq!(
            emitted.iter().map(|&(r, _)| r).collect::<Vec<_>>(),
            (0..sizes.len()).collect::<Vec<_>>()
        );
        // Per-client FIFO: each client's seq numbers emit in order.
        let mut next_seq = [0u64; 3];
        for &(_, id) in &emitted {
            prop_assert_eq!(id.seq, next_seq[id.client]);
            next_seq[id.client] += 1;
        }
        // Token budget: a batch only exceeds it when a single oversized
        // request forms the whole batch (anti-starvation clause).
        for batch in &batches {
            let tokens: usize = batch.iter().map(|&(r, _)| sizes[r]).sum();
            prop_assert!(tokens <= budget || batch.len() == 1);
        }
    }

    /// The apportionment is a pure function: complete (sums to budget),
    /// covering (every expert >= 1), and deterministic.
    #[test]
    fn replica_counts_complete_and_deterministic(
        hist in prop::collection::vec(0usize..10_000, 1..12),
        extra in 0usize..20,
    ) {
        let budget = hist.len() + extra;
        let a = replica_counts(&hist, budget);
        prop_assert_eq!(a.iter().sum::<usize>(), budget);
        prop_assert!(a.iter().all(|&c| c >= 1));
        prop_assert_eq!(&a, &replica_counts(&hist, budget));
        // Placement covers worker ranks 1..=budget exactly once.
        let plan = ReplicaPlan::new(a);
        let mut ranks: Vec<usize> = plan.homes.iter().flatten().copied().collect();
        ranks.sort_unstable();
        prop_assert_eq!(ranks, (1..=budget).collect::<Vec<_>>());
    }

    /// Monotone in gate load: raising one expert's observed load never
    /// loses it a replica (highest-averages house monotonicity).
    #[test]
    fn replica_counts_monotone_in_load(
        hist in prop::collection::vec(0usize..5_000, 2..10),
        extra in 0usize..16,
        bump_idx in 0usize..10,
        bump in 1usize..5_000,
    ) {
        let budget = hist.len() + extra;
        let e = bump_idx % hist.len();
        let base = replica_counts(&hist, budget);
        let mut bumped = hist.clone();
        bumped[e] += bump;
        let after = replica_counts(&bumped, budget);
        prop_assert!(
            after[e] >= base[e],
            "expert {} lost replicas ({} -> {}) after load rose: {:?} -> {:?}",
            e, base[e], after[e], hist, bumped
        );
    }
}
