//! Shared graph-building context for the iteration engines.

use crate::sim::setup::SimSetup;
use janus_netsim::{Graph, GraphBuilder, LaneId, PoolId, TaskId, TaskSpec, Work};
use janus_topology::Location;

/// Builder wrapper holding per-worker lanes and the iteration-start node.
pub struct Ctx<'a> {
    /// The setup being compiled.
    pub setup: &'a SimSetup,
    /// Underlying graph builder.
    pub g: GraphBuilder,
    /// One compute lane per GPU (the CUDA compute stream).
    pub gpu_lane: Vec<LaneId>,
    /// One fetch lane per GPU (the Intra-Node Scheduler's serialized pull
    /// pipeline).
    pub fetch_lane: Vec<LaneId>,
    /// One fetch lane per machine (the Inter-Node Scheduler's serialized
    /// cross-machine pull queue; ordering by priority keeps earlier
    /// blocks' experts ahead of prefetched later ones on the NIC).
    pub inter_lane: Vec<LaneId>,
    /// Iteration-start NoOp every root task depends on.
    pub start: TaskId,
    /// Fixed per-message issue latency applied to every transfer
    /// (control-plane round trip + kernel launch; see
    /// [`crate::sim::engine::EngineOpts::msg_latency`]).
    pub msg_latency: f64,
}

impl<'a> Ctx<'a> {
    /// Fresh context for `setup`.
    pub fn new(setup: &'a SimSetup) -> Self {
        let workers = setup.cluster.num_workers();
        let mut g = GraphBuilder::new(setup.cluster.num_links(), 0);
        let gpu_lane = (0..workers).map(|_| g.lane()).collect();
        let fetch_lane = (0..workers).map(|_| g.lane()).collect();
        let inter_lane = (0..setup.cluster.num_machines())
            .map(|_| g.lane())
            .collect();
        let start = g.add(TaskSpec::new(Work::NoOp).label("iter-start"), &[]);
        Ctx {
            setup,
            g,
            gpu_lane,
            fetch_lane,
            inter_lane,
            start,
            msg_latency: 0.0,
        }
    }

    /// A compute task of `flops` on worker `w`'s GPU lane.
    pub fn compute(
        &mut self,
        w: usize,
        flops: f64,
        label: String,
        priority: i64,
        deps: &[TaskId],
    ) -> TaskId {
        let duration = self.setup.secs(flops);
        self.g.add(
            TaskSpec::new(Work::Compute {
                lane: self.gpu_lane[w],
                duration,
            })
            .label(label)
            .priority(priority),
            deps,
        )
    }

    /// A transfer between two memory domains, optionally serialized on a
    /// lane.
    #[allow(clippy::too_many_arguments)]
    pub fn transfer(
        &mut self,
        from: Location,
        to: Location,
        bytes: f64,
        label: String,
        priority: i64,
        lane: Option<LaneId>,
        deps: &[TaskId],
    ) -> TaskId {
        let route = self.setup.cluster.route(from, to);
        self.g.add(
            TaskSpec::new(Work::Transfer {
                route,
                bytes,
                lane,
                latency: self.msg_latency,
            })
            .label(label)
            .priority(priority),
            deps,
        )
    }

    /// Zero-duration join node.
    pub fn join(&mut self, label: String, deps: &[TaskId]) -> TaskId {
        self.g.add(TaskSpec::new(Work::NoOp).label(label), deps)
    }

    /// Allocate a per-worker credit pool of the given capacity.
    pub fn credit_pools(&mut self, capacity: u32) -> Vec<PoolId> {
        (0..self.setup.cluster.num_workers())
            .map(|_| self.g.pool(capacity))
            .collect()
    }

    /// Take a credit from `pool`.
    pub fn acquire(&mut self, pool: PoolId, priority: i64, deps: &[TaskId]) -> TaskId {
        self.g.add(
            TaskSpec::new(Work::AcquireCredits { pool, amount: 1 }).priority(priority),
            deps,
        )
    }

    /// Return a credit to `pool`.
    pub fn release(&mut self, pool: PoolId, deps: &[TaskId]) -> TaskId {
        self.g.add(
            TaskSpec::new(Work::ReleaseCredits { pool, amount: 1 }),
            deps,
        )
    }

    /// Finish building.
    pub fn build(self) -> Graph {
        self.g.build()
    }
}

/// Measure communication-phase windows from a simulation result: groups
/// records whose label starts with `a2a/` by phase (`a2a/b{b}/{tag}`) and
/// sums `max(finish) − min(start)` per phase.
///
/// The per-phase windows are summed in key order (`BTreeMap`): float
/// addition is not associative, so a hash map here would let the
/// process-random hasher seed wiggle the last ULP of the total between
/// runs — enough to fail a bitwise artifact verification.
pub fn a2a_window_time(sim: &janus_netsim::SimResult) -> f64 {
    use std::collections::BTreeMap;
    let mut phases: BTreeMap<&str, (f64, f64)> = BTreeMap::new();
    for r in &sim.records {
        if !r.label.starts_with("a2a/") {
            continue;
        }
        // Phase key: "a2a/b{b}/{tag}" — strip the final "/..." component.
        let key = match r.label.rfind('/') {
            Some(pos) => &r.label[..pos],
            None => r.label.as_str(),
        };
        let entry = phases.entry(key).or_insert((f64::INFINITY, 0.0));
        entry.0 = entry.0.min(r.start);
        entry.1 = entry.1.max(r.finish);
    }
    phases.values().map(|(s, f)| (f - s).max(0.0)).sum()
}

/// Total queue-wait time of worker-0's expert compute tasks in the
/// forward phase — the data-centric analogue of "time blocked on expert
/// communication".
pub fn fetch_stall_time(sim: &janus_netsim::SimResult, worker: usize) -> f64 {
    let prefix = format!("w{worker}/");
    sim.records
        .iter()
        .filter(|r| {
            r.label.starts_with(&prefix)
                && r.label.contains("/ep")
                && r.label.ends_with("/fwd")
                && r.kind == "compute"
        })
        .map(|r| (r.start - r.ready).max(0.0))
        .sum()
}
