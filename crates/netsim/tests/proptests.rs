//! Property-based tests for the fair allocator and the simulator.

use janus_netsim::fair::max_min_rates;
use janus_netsim::{simulate, GraphBuilder, Work};
use janus_topology::LinkId;
use proptest::prelude::*;

/// Random flow routes over `n_links` links.
fn flows_strategy(n_links: usize) -> impl Strategy<Value = Vec<Vec<LinkId>>> {
    prop::collection::vec(prop::collection::vec(0..n_links, 1..=n_links.min(4)), 1..12).prop_map(
        |flows| {
            flows
                .into_iter()
                .map(|f| f.into_iter().map(LinkId).collect())
                .collect()
        },
    )
}

proptest! {
    /// No link ever exceeds its capacity under max-min allocation.
    #[test]
    fn fair_allocation_respects_capacities(
        flows in flows_strategy(5),
        caps in prop::collection::vec(0.1f64..100.0, 5),
    ) {
        let rates = max_min_rates(&flows, &caps);
        let mut used = vec![0.0f64; caps.len()];
        for (flow, rate) in flows.iter().zip(&rates) {
            let mut links: Vec<usize> = flow.iter().map(|l| l.index()).collect();
            links.sort_unstable();
            links.dedup();
            for l in links {
                used[l] += rate;
            }
        }
        for (u, c) in used.iter().zip(&caps) {
            prop_assert!(*u <= c * (1.0 + 1e-9), "link over capacity: {u} > {c}");
        }
    }

    /// Max-min optimality: every flow has a bottleneck link — a saturated
    /// link on its route where no other flow gets a strictly higher rate.
    #[test]
    fn fair_allocation_is_max_min(
        flows in flows_strategy(4),
        caps in prop::collection::vec(0.5f64..50.0, 4),
    ) {
        let rates = max_min_rates(&flows, &caps);
        let dedup: Vec<Vec<usize>> = flows
            .iter()
            .map(|f| {
                let mut ls: Vec<usize> = f.iter().map(|l| l.index()).collect();
                ls.sort_unstable();
                ls.dedup();
                ls
            })
            .collect();
        let mut used = vec![0.0f64; caps.len()];
        for (links, rate) in dedup.iter().zip(&rates) {
            for &l in links {
                used[l] += rate;
            }
        }
        for (i, links) in dedup.iter().enumerate() {
            let has_bottleneck = links.iter().any(|&l| {
                let saturated = used[l] >= caps[l] * (1.0 - 1e-9);
                let i_is_max = dedup
                    .iter()
                    .enumerate()
                    .filter(|(_, other)| other.contains(&l))
                    .all(|(j, _)| rates[j] <= rates[i] * (1.0 + 1e-9));
                saturated && i_is_max
            });
            prop_assert!(has_bottleneck, "flow {i} (rate {}) has no bottleneck", rates[i]);
        }
    }

    /// The simulated makespan of a set of laneless transfers is never less
    /// than the most loaded link's serial time, and link byte counters
    /// conserve the offered load.
    #[test]
    fn sim_makespan_and_byte_conservation(
        transfers in prop::collection::vec(
            (prop::collection::vec(0..4usize, 1..=3), 1.0f64..1000.0),
            1..10,
        ),
        caps in prop::collection::vec(1.0f64..50.0, 4),
    ) {
        let mut g = GraphBuilder::new(4, 0);
        let mut offered = [0.0f64; 4];
        for (route, bytes) in &transfers {
            let mut links: Vec<usize> = route.clone();
            links.sort_unstable();
            links.dedup();
            for &l in &links {
                offered[l] += bytes;
            }
            g.task(
                Work::Transfer {
                    route: links.into_iter().map(LinkId).collect(),
                    bytes: *bytes,
                    lane: None,
                    latency: 0.0,
                },
                &[],
            );
        }
        let result = simulate(&g.build(), &caps).unwrap();
        for l in 0..4 {
            prop_assert!((result.link_bytes[l] - offered[l]).abs() < 1e-3,
                "link {l}: carried {} vs offered {}", result.link_bytes[l], offered[l]);
            let serial = offered[l] / caps[l];
            prop_assert!(result.makespan >= serial - 1e-6,
                "makespan {} below serial bound {serial}", result.makespan);
        }
        // And never worse than fully serializing everything on the
        // slowest link of each transfer.
        let serial_total: f64 = transfers
            .iter()
            .map(|(route, bytes)| {
                let min_cap = route.iter().map(|&l| caps[l]).fold(f64::INFINITY, f64::min);
                bytes / min_cap
            })
            .sum();
        prop_assert!(result.makespan <= serial_total + 1e-6);
    }

    /// Credit pools never admit more concurrent holders than their
    /// capacity: with a pool of size c and per-holder duration d, the
    /// makespan of k holders is at least ceil(k/c)*d.
    #[test]
    fn credit_pool_limits_concurrency(
        holders in 1usize..12,
        capacity in 1u32..4,
    ) {
        let d = 1.0;
        let mut g = GraphBuilder::new(0, 0);
        let pool = g.pool(capacity);
        for i in 0..holders {
            let lane = g.lane(); // independent lanes: only the pool constrains concurrency
            let a = g.task(Work::AcquireCredits { pool, amount: 1 }, &[]);
            let c = g.task(Work::Compute { lane, duration: d }, &[a]);
            g.task(Work::ReleaseCredits { pool, amount: 1 }, &[c]);
            let _ = i;
        }
        let result = simulate(&g.build(), &[]).unwrap();
        let rounds = holders.div_ceil(capacity as usize) as f64;
        prop_assert!((result.makespan - rounds * d).abs() < 1e-9,
            "makespan {} != expected {}", result.makespan, rounds * d);
    }

    /// Simulation is deterministic: running the same graph twice gives
    /// identical timings.
    #[test]
    fn sim_is_deterministic(
        transfers in prop::collection::vec(
            (prop::collection::vec(0..3usize, 1..=2), 1.0f64..100.0),
            1..8,
        ),
    ) {
        let build = || {
            let mut g = GraphBuilder::new(3, 0);
            let lane = g.lane();
            for (route, bytes) in &transfers {
                let mut links: Vec<usize> = route.clone();
                links.sort_unstable();
                links.dedup();
                let t = g.task(
                    Work::Transfer {
                        route: links.into_iter().map(LinkId).collect(),
                        bytes: *bytes,
                        lane: None,
                        latency: 0.0,
                    },
                    &[],
                );
                g.task(Work::Compute { lane, duration: 0.1 }, &[t]);
            }
            g.build()
        };
        let caps = [7.0, 11.0, 13.0];
        let r1 = simulate(&build(), &caps).unwrap();
        let r2 = simulate(&build(), &caps).unwrap();
        prop_assert_eq!(r1.makespan, r2.makespan);
        for (a, b) in r1.records.iter().zip(&r2.records) {
            prop_assert_eq!(a.start, b.start);
            prop_assert_eq!(a.finish, b.finish);
        }
    }
}
