//! Offline shim for `serde_json`: renders and parses the shim `serde`
//! crate's [`Value`] tree. Covers `to_string`, `to_string_pretty`,
//! `from_str`, and the `Value` type with indexing/comparison helpers.

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Error type covering both render and parse failures.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize a value to indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Parse JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ---- rendering ----

fn render(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => render_num(*n, out),
        Value::Str(s) => render_str(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_str(k, out);
                out.push(':');
                render(val, out);
            }
            out.push('}');
        }
    }
}

fn render_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                render_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Obj(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                render_str(k, out);
                out.push_str(": ");
                render_pretty(val, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => render(other, out),
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn render_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // serde_json rejects non-finite floats; `null` keeps output valid
        // and is what our report consumers expect for absent measurements.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // Rust's float Display is shortest-round-trip, valid JSON.
        out.push_str(&format!("{n}"));
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of JSON".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, self.bytes[self.pos] as char
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `]`, found `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    fields.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected `,` or `}}`, found `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs unsupported (not produced by
                            // our renderer); map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(Error(format!("bad escape `\\{}`", other as char))),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error("truncated UTF-8".into()))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| Error("invalid UTF-8".into()))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error(format!("invalid number `{text}` at byte {start}")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&5usize).unwrap(), "5");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<usize>("5").unwrap(), 5);
        assert_eq!(from_str::<f64>("-2.5e3").unwrap(), -2500.0);
        assert_eq!(from_str::<String>("\"hi\\nthere\"").unwrap(), "hi\nthere");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);
    }

    #[test]
    fn value_parsing_and_indexing() {
        let v: Value = from_str(r#"{"a": [1, {"b": "x"}], "c": null}"#).unwrap();
        assert_eq!(v["a"][0], 1.0);
        assert_eq!(v["a"][1]["b"], "x");
        assert_eq!(v["c"], Value::Null);
        assert!(v.as_object().is_some());
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(to_string(&1e6f64).unwrap(), "1000000");
        assert_eq!(to_string(&(-3i64)).unwrap(), "-3");
    }

    #[test]
    fn bad_input_is_rejected() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
