//! DAG-core and executor tests: validation errors, deterministic
//! scheduling, and the manifest/verify contract.

use janus_lab::{Dag, DagError, Executor, LabEnv, OutFile, TaskReport, TaskSpec, TaskStatus};
use proptest::prelude::*;
use serde_json::Value;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A no-op task with the given name.
fn noop(name: &str) -> TaskSpec {
    TaskSpec::new(name, |_ctx| Ok(TaskReport::default()))
}

/// A fresh scratch root under the system temp dir, emptied first.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("janus-lab-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn cycle_is_rejected_and_named() {
    let tasks = vec![
        noop("a").dep("c"),
        noop("b").dep("a"),
        noop("c").dep("b"),
        noop("free"),
    ];
    match Dag::new(tasks) {
        Err(DagError::Cycle(stuck)) => {
            for name in ["a", "b", "c"] {
                assert!(
                    stuck.contains(&name.to_string()),
                    "cycle must name `{name}`"
                );
            }
            assert!(!stuck.contains(&"free".to_string()));
        }
        other => panic!("expected Cycle, got {:?}", other.err()),
    }
}

#[test]
fn self_edge_is_a_cycle() {
    match Dag::new(vec![noop("a").dep("a")]) {
        Err(DagError::Cycle(stuck)) => assert_eq!(stuck, vec!["a".to_string()]),
        other => panic!("expected Cycle, got {:?}", other.err()),
    }
}

#[test]
fn missing_dependency_is_rejected() {
    match Dag::new(vec![noop("a").dep("ghost")]) {
        Err(DagError::MissingDep { task, dep }) => {
            assert_eq!(task, "a");
            assert_eq!(dep, "ghost");
        }
        other => panic!("expected MissingDep, got {:?}", other.err()),
    }
}

#[test]
fn duplicate_name_is_rejected() {
    match Dag::new(vec![noop("a"), noop("a")]) {
        Err(DagError::DuplicateName(n)) => assert_eq!(n, "a"),
        other => panic!("expected DuplicateName, got {:?}", other.err()),
    }
}

#[test]
fn unsafe_directory_names_are_rejected() {
    for bad in ["", "a/b", "a b", "../up"] {
        assert!(
            matches!(Dag::new(vec![noop(bad)]), Err(DagError::BadName(_))),
            "`{bad}` must be rejected"
        );
    }
}

#[test]
fn unmatched_glob_errors() {
    let dag = Dag::new(vec![noop("a")]).unwrap();
    assert_eq!(
        dag.select(&["nope*".to_string()]),
        Err(DagError::NoMatch("nope*".to_string()))
    );
}

/// A diamond plus independent leaves — enough simultaneously-ready tasks
/// that seed-keyed tie-breaking has room to reorder.
fn wide_dag() -> Dag {
    Dag::new(vec![
        noop("root"),
        noop("left").dep("root"),
        noop("right").dep("root"),
        noop("join").dep("left").dep("right"),
        noop("leaf0"),
        noop("leaf1"),
        noop("leaf2"),
        noop("leaf3"),
    ])
    .unwrap()
}

#[test]
fn topo_order_is_deterministic_per_seed_and_respects_deps() {
    let dag = wide_dag();
    let mut orders = BTreeSet::new();
    for seed in 0..16u64 {
        let order = dag.topo_order(seed);
        assert_eq!(order, dag.topo_order(seed), "same seed, same order");
        assert_eq!(order.len(), dag.tasks().len());
        let pos: Vec<usize> = {
            let mut pos = vec![0; order.len()];
            for (p, &i) in order.iter().enumerate() {
                pos[i] = p;
            }
            pos
        };
        for (i, t) in dag.tasks().iter().enumerate() {
            for d in &t.deps {
                let j = dag.find(d).unwrap();
                assert!(
                    pos[j] < pos[i],
                    "seed {seed}: `{d}` must precede `{}`",
                    t.name
                );
            }
        }
        orders.insert(order);
    }
    assert!(
        orders.len() > 1,
        "16 seeds over 6 unordered tasks should explore more than one interleaving"
    );
}

/// A small graph whose artifacts are pure functions of the lab seed:
/// a diamond where the join hashes its dependencies' digests.
fn seeded_dag() -> Dag {
    let emit = |name: &'static str| {
        TaskSpec::new(name, move |ctx| {
            Ok(TaskReport {
                files: vec![OutFile::new(
                    format!("{name}.json"),
                    format!("{{\"seed\": {}}}\n", ctx.seed).into_bytes(),
                )],
                config: Value::Str(name.to_string()),
                plan_digests: vec![format!("{:016x}", ctx.seed)],
            })
        })
    };
    Dag::new(vec![
        emit("a"),
        emit("b"),
        emit("c"),
        TaskSpec::new("join", |ctx| {
            let inputs: Vec<String> = ctx
                .deps
                .iter()
                .map(|(name, m)| format!("{name}:{}", m.output_digest()))
                .collect();
            Ok(TaskReport {
                files: vec![OutFile::new(
                    "join.json",
                    format!("{{\"inputs\": {:?}}}\n", inputs).into_bytes(),
                )],
                config: Value::Str("join".to_string()),
                plan_digests: Vec::new(),
            })
        })
        .dep("a")
        .dep("b")
        .dep("c"),
    ])
    .unwrap()
}

fn manifest_bytes(root: &std::path::Path, task: &str) -> Vec<u8> {
    std::fs::read(root.join(task).join("manifest.json"))
        .unwrap_or_else(|e| panic!("manifest for `{task}`: {e}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A parallel run and a serial run of the same graph at the same
    /// seed produce byte-identical manifests: scheduling is invisible
    /// in every recorded (non-diagnostic) byte.
    #[test]
    fn parallel_and_serial_runs_emit_identical_manifests(seed in 0u64..1_000_000) {
        let dag = seeded_dag();
        let selected = dag.default_set();
        let serial_root = scratch(&format!("serial-{seed}"));
        let parallel_root = scratch(&format!("parallel-{seed}"));

        let serial = Executor::new(&serial_root, 1, seed, LabEnv::unknown()).quiet();
        prop_assert!(serial.run(&dag, &selected).ok());
        let parallel = Executor::new(&parallel_root, 4, seed, LabEnv::unknown()).quiet();
        prop_assert!(parallel.run(&dag, &selected).ok());

        for task in ["a", "b", "c", "join"] {
            prop_assert_eq!(
                manifest_bytes(&serial_root, task),
                manifest_bytes(&parallel_root, task),
                "manifest of `{}` differs between --jobs 1 and --jobs 4", task
            );
        }
        let _ = std::fs::remove_dir_all(&serial_root);
        let _ = std::fs::remove_dir_all(&parallel_root);
    }
}

/// A task whose JSON artifact has one field that changes every run
/// (`noise`) next to a stable payload (`value`).
fn noisy_dag(masked: bool) -> Dag {
    let runs = Arc::new(AtomicU64::new(0));
    let mut spec = TaskSpec::new("noisy", move |_ctx| {
        let n = runs.fetch_add(1, Ordering::Relaxed);
        Ok(TaskReport {
            files: vec![OutFile::new(
                "noisy.json",
                format!("{{\"value\": 7, \"noise\": {n}}}\n").into_bytes(),
            )],
            config: Value::Str("noisy".to_string()),
            plan_digests: Vec::new(),
        })
    });
    if masked {
        spec = spec.mask(&["noise"]);
    }
    Dag::new(vec![spec]).unwrap()
}

#[test]
fn verify_masks_declared_keys_and_catches_the_rest() {
    for (masked, expect) in [(true, TaskStatus::Ok), (false, TaskStatus::Failed)] {
        let dag = noisy_dag(masked);
        let root = scratch(if masked { "masked" } else { "unmasked" });
        let selected = dag.default_set();
        let exec = Executor::new(&root, 1, 0, LabEnv::unknown()).quiet();
        assert!(exec.run(&dag, &selected).ok());
        let summary = exec.verify(&dag, &selected);
        assert_eq!(
            summary.outcomes[0].status, expect,
            "masked={masked}: {}",
            summary.outcomes[0].detail
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn verify_skips_tasks_with_only_volatile_outputs() {
    let dag = Dag::new(vec![TaskSpec::new("timing", |_ctx| {
        Ok(TaskReport {
            files: vec![OutFile::volatile("timing.json", b"{\"ms\": 1}\n".to_vec())],
            config: Value::Str("timing".to_string()),
            plan_digests: Vec::new(),
        })
    })])
    .unwrap();
    let root = scratch("volatile");
    let selected = dag.default_set();
    let exec = Executor::new(&root, 1, 0, LabEnv::unknown()).quiet();
    assert!(exec.run(&dag, &selected).ok());
    let summary = exec.verify(&dag, &selected);
    assert_eq!(summary.outcomes[0].status, TaskStatus::Skipped);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn failed_dependency_skips_dependents() {
    let dag = Dag::new(vec![
        TaskSpec::new("boom", |_ctx| Err("deliberate".to_string())),
        noop("after").dep("boom"),
    ])
    .unwrap();
    let root = scratch("skip");
    let exec = Executor::new(&root, 1, 0, LabEnv::unknown()).quiet();
    let summary = exec.run(&dag, &dag.default_set());
    assert!(!summary.ok());
    assert_eq!(summary.count(TaskStatus::Failed), 1);
    assert_eq!(summary.count(TaskStatus::Skipped), 1);
    let _ = std::fs::remove_dir_all(&root);
}
