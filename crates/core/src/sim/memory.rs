//! Analytic per-GPU memory model.
//!
//! Reproduces the paper's Figure 16 out-of-memory behaviour: at `S = 512`
//! the expert-centric MoE-BERT run exceeds the A100's 80 GB because the
//! dispatched token buffers (sized by the *busiest* expert) must be kept
//! for the backward pass, while the data-centric run keeps only its own
//! `B·S·k` token slots plus a handful of expert buffers.
//!
//! Components (all per GPU, in bytes):
//!
//! * **training state** — resident parameters (replicated dense weights +
//!   owned experts) at 16 B/param (fp16 weight + fp16 grad + fp32 master
//!   + fp32 Adam m/v);
//! * **activations** — `STORED_ACTIVATION_TENSORS` tensors of `B·S·H`
//!   plus the `B·heads·S·S` attention score matrix, per block, kept for
//!   backward;
//! * **paradigm-specific expert buffers** — see
//!   [`expert_centric_extra`] / [`data_centric_extra`].

use crate::paradigm::Paradigm;
use janus_moe::config::ModelConfig;
use janus_moe::workload::AssignmentMatrix;
use serde::Serialize;

/// Activation tensors of shape `B·S·H` stored per block for backward:
/// block input, Q/K/V, attention output and projection, two residual
/// streams, the FFN hidden pair (each `4H` wide, counting as 8), and
/// dropout/norm saves — ~20 `B·S·H`-sized tensors, matching what an
/// unfused PyTorch transformer keeps alive. This puts the S=512 MoE-BERT
/// footprint just under the 80 GB budget before paradigm-specific
/// buffers, which is exactly the regime the paper's Figure 16 probes.
pub const STORED_ACTIVATION_TENSORS: f64 = 20.0;

/// Head dimension used to infer head count (`H / 64`, floor 1).
const HEAD_DIM: usize = 64;

/// Per-GPU memory breakdown.
#[derive(Debug, Clone, Serialize)]
pub struct MemoryEstimate {
    /// Optimizer + weights.
    pub state_bytes: f64,
    /// Stored activations.
    pub activation_bytes: f64,
    /// Paradigm-specific expert/token buffers.
    pub buffer_bytes: f64,
    /// Sum of the above.
    pub total_bytes: f64,
    /// GPU capacity the estimate was checked against.
    pub capacity_bytes: f64,
    /// `total > capacity`.
    pub oom: bool,
}

/// Bytes per parameter of training state: fp16 weights + fp16 grads +
/// fp32 master weights + fp32 Adam moments.
pub const STATE_BYTES_PER_PARAM: f64 = 16.0;

/// Resident parameter count per GPU: replicated non-expert weights plus
/// this GPU's expert shard.
pub fn resident_params(model: &ModelConfig, num_workers: usize) -> f64 {
    let expert_params: usize = model
        .moe_blocks()
        .iter()
        .map(|&b| model.blocks[b].experts() * model.expert_params())
        .sum();
    let dense_params = model.total_params() - expert_params;
    dense_params as f64 + (expert_params / num_workers) as f64
}

/// Stored activation bytes per GPU for the whole model.
pub fn activation_bytes(model: &ModelConfig) -> f64 {
    let tokens = (model.batch * model.seq_len) as f64;
    let h = model.hidden_dim as f64;
    let heads = (model.hidden_dim / HEAD_DIM).max(1) as f64;
    let per_block = STORED_ACTIVATION_TENSORS * tokens * h * model.dtype_bytes as f64
        + model.batch as f64
            * heads
            * (model.seq_len * model.seq_len) as f64
            * model.dtype_bytes as f64;
    per_block * model.blocks.len() as f64
}

/// Extra bytes the expert-centric paradigm holds per GPU: for every MoE
/// block, the received token batch and its expert outputs (kept for
/// backward), sized by the busiest worker's receive volume, plus one
/// transient dispatch send buffer.
pub fn expert_centric_extra(
    model: &ModelConfig,
    assignment: &AssignmentMatrix,
    block: usize,
) -> f64 {
    let _ = block;
    let num_workers = assignment.workers() as f64;
    let total_slots: f64 = (0..assignment.experts())
        .map(|e| assignment.expert_load(e) as f64)
        .sum();
    let mean_per_worker = total_slots / num_workers;
    // Busiest worker's received tokens = imbalance × mean.
    let received = assignment.imbalance_factor() * mean_per_worker;
    let token_bytes = model.token_bytes();
    // Received inputs + computed outputs stored for backward.
    2.0 * received * token_bytes
}

/// Transient dispatch/combine staging per MoE block (send side), not kept
/// across blocks.
pub fn expert_centric_transient(model: &ModelConfig) -> f64 {
    2.0 * model.tokens_per_worker() as f64 * model.token_bytes()
}

/// Extra bytes the data-centric paradigm holds per GPU: its own `B·S·k`
/// expert inputs + outputs per MoE block (kept for backward) plus the
/// credit buffer (`credits` experts) and the CPU-side cache is not GPU
/// memory.
pub fn data_centric_extra(model: &ModelConfig, credits: u32) -> f64 {
    let per_block = 2.0 * model.tokens_per_worker() as f64 * model.token_bytes();
    let buffers = credits as f64 * model.expert_bytes();
    per_block * model.moe_blocks().len() as f64 + buffers
}

/// Full per-GPU estimate for one paradigm applied to every MoE block.
pub fn estimate(
    model: &ModelConfig,
    assignments: &[Option<AssignmentMatrix>],
    num_workers: usize,
    capacity_bytes: f64,
    paradigm: Paradigm,
    credits: u32,
) -> MemoryEstimate {
    let paradigms = vec![paradigm; model.blocks.len()];
    estimate_mixed(
        model,
        assignments,
        num_workers,
        capacity_bytes,
        &paradigms,
        credits,
    )
}

/// Per-GPU estimate with a per-block paradigm choice (the unified
/// engine). `paradigms` is indexed by block; entries for dense blocks are
/// ignored.
pub fn estimate_mixed(
    model: &ModelConfig,
    assignments: &[Option<AssignmentMatrix>],
    num_workers: usize,
    capacity_bytes: f64,
    paradigms: &[Paradigm],
    credits: u32,
) -> MemoryEstimate {
    let state_bytes = resident_params(model, num_workers) * STATE_BYTES_PER_PARAM;
    let act = activation_bytes(model);
    let mut buffer_bytes = 0.0;
    let (mut any_ec, mut any_dc) = (false, false);
    let dc_per_block = 2.0 * model.tokens_per_worker() as f64 * model.token_bytes();
    for &b in &model.moe_blocks() {
        match paradigms[b] {
            Paradigm::ExpertCentric => {
                any_ec = true;
                buffer_bytes += expert_centric_extra(
                    model,
                    assignments[b].as_ref().expect("assignment for MoE block"),
                    b,
                );
            }
            Paradigm::DataCentric => {
                any_dc = true;
                buffer_bytes += dc_per_block;
            }
        }
    }
    if any_ec {
        buffer_bytes += expert_centric_transient(model);
    }
    if any_dc {
        buffer_bytes += credits as f64 * model.expert_bytes();
    }
    let total_bytes = state_bytes + act + buffer_bytes;
    MemoryEstimate {
        state_bytes,
        activation_bytes: act,
        buffer_bytes,
        total_bytes,
        capacity_bytes,
        oom: total_bytes > capacity_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_moe::config::ModelPreset;
    use janus_moe::workload::Imbalance;

    fn assignments_for(model: &ModelConfig, imb: Imbalance) -> Vec<Option<AssignmentMatrix>> {
        model
            .blocks
            .iter()
            .map(|k| {
                k.is_moe().then(|| {
                    AssignmentMatrix::generate(32, k.experts(), model.tokens_per_worker(), imb, 1)
                })
            })
            .collect()
    }

    /// The paper's Figure 16 OOM case: MoE-BERT, B=256, k=4, S=512 —
    /// Tutel (expert-centric) OOMs on 80 GB, Janus does not.
    #[test]
    fn fig16_bert_s512_oom_only_for_expert_centric() {
        let mut model = ModelPreset::MoeBert.config(32);
        model.top_k = 4;
        model.seq_len = 512;
        let assignments = assignments_for(&model, Imbalance::Zipf(0.3));
        let cap = 80e9;
        let ec = estimate(&model, &assignments, 32, cap, Paradigm::ExpertCentric, 2);
        let dc = estimate(&model, &assignments, 32, cap, Paradigm::DataCentric, 2);
        assert!(ec.oom, "expert-centric should exceed 80 GB: {ec:?}");
        assert!(!dc.oom, "data-centric must fit: {dc:?}");
    }

    /// At S=256 both paradigms fit comfortably (the other Figure 16 bars).
    #[test]
    fn fig16_bert_s256_fits_for_both() {
        let mut model = ModelPreset::MoeBert.config(32);
        model.top_k = 4;
        model.seq_len = 256;
        let assignments = assignments_for(&model, Imbalance::Zipf(0.3));
        let cap = 80e9;
        for p in [Paradigm::ExpertCentric, Paradigm::DataCentric] {
            let est = estimate(&model, &assignments, 32, cap, p, 2);
            assert!(!est.oom, "{p:?}: {est:?}");
        }
    }

    #[test]
    fn gpt_and_xl_never_oom_in_fig16_sweep() {
        for (preset, batch, k) in [
            (ModelPreset::MoeGpt, 32, 8),
            (ModelPreset::MoeTransformerXl, 64, 2),
        ] {
            for s in [256, 512] {
                let mut model = preset.config(32);
                model.batch = batch;
                model.top_k = k;
                model.seq_len = s;
                let assignments = assignments_for(&model, Imbalance::Zipf(0.3));
                for p in [Paradigm::ExpertCentric, Paradigm::DataCentric] {
                    let est = estimate(&model, &assignments, 32, 80e9, p, 2);
                    assert!(!est.oom, "{preset:?} S={s} {p:?}: {est:?}");
                }
            }
        }
    }

    #[test]
    fn ec_buffers_grow_with_imbalance() {
        let model = ModelPreset::MoeBert.config(32);
        let balanced = assignments_for(&model, Imbalance::Balanced);
        let skewed = assignments_for(&model, Imbalance::Zipf(0.3));
        let b = estimate(&model, &balanced, 32, 80e9, Paradigm::ExpertCentric, 2);
        let s = estimate(&model, &skewed, 32, 80e9, Paradigm::ExpertCentric, 2);
        assert!(s.buffer_bytes > b.buffer_bytes);
    }

    #[test]
    fn dc_buffers_independent_of_imbalance() {
        let model = ModelPreset::MoeBert.config(32);
        let d = data_centric_extra(&model, 2);
        assert!(d > 0.0);
        // Scales with credits.
        assert!(data_centric_extra(&model, 4) > d);
    }

    #[test]
    fn state_bytes_scale_down_with_more_workers() {
        let model = ModelPreset::MoeBert.config(32);
        let p32 = resident_params(&model, 32);
        let p16 = resident_params(&model, 16);
        assert!(p16 > p32);
    }
}
