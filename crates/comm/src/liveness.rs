//! Peer liveness: heartbeats, a mesh-wide health board, and a monitoring
//! transport wrapper that turns dead peers into typed errors.
//!
//! A dead rank must never hang the cluster. [`LivenessMonitor`] wraps any
//! [`Transport`] and guarantees that every blocking operation either
//! makes progress or returns [`CommError::PeerDead`] naming the dead
//! peer. Death is learned two ways:
//!
//! * **The health board.** Every monitor of a mesh shares one
//!   [`HealthBoard`]. When a worker thread panics, the runtime
//!   ([`crate::runtime::run_on`]) marks that rank dead on the board via
//!   the [`DeathHandle`] obtained from [`Transport::death_handle`], and
//!   every peer blocked in a monitored receive observes it within one
//!   poll slice. This is the primary detection path and is exact: it
//!   carries the panic message.
//! * **Heartbeats.** With [`LivenessConfig::heartbeat_every_ops`] > 0,
//!   each monitor emits [`Message::Heartbeat`] to every peer after that
//!   many application sends — an interval counted in *virtual send-ops*,
//!   not wall-clock, so the schedule is deterministic — plus a
//!   wall-clock trickle while blocked in a receive so an idle-but-alive
//!   rank keeps beaconing. A peer silent for
//!   [`LivenessConfig::suspect_after`] is declared dead. This backstop
//!   catches wedged-but-not-panicked peers (e.g. a worker stuck outside
//!   the transport). Heartbeats are consumed by the receiving monitor
//!   and never surface to the layers above.
//!
//! Heartbeats are **off by default** so a plain monitored mesh is
//! message-for-message identical to a raw one; the supervisor and the
//! liveness tests opt in. Stack the monitor *below* fault-injection and
//! reliability wrappers (`Reliable<Faulty<LivenessMonitor<Local>>>`):
//! heartbeats then bypass fault injection (they are link-local and
//! fire-and-forget, and must not perturb the seeded fault schedule), and
//! `PeerDead` propagates up through the wrappers' error paths — including
//! retransmit loops, which call the inner transport on every pump.

use crate::local::{local_mesh, LocalTransport};
use crate::message::Message;
use crate::transport::{CommError, Transport, TransportStats};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Liveness protocol knobs.
#[derive(Debug, Clone, Copy)]
pub struct LivenessConfig {
    /// Emit a heartbeat to every peer after this many application sends.
    /// `0` disables heartbeats (and silence-based suspicion) entirely.
    pub heartbeat_every_ops: u64,
    /// While blocked in a receive, also heartbeat at this wall-clock
    /// interval so an idle rank keeps beaconing.
    pub idle_heartbeat: Duration,
    /// Declare a peer dead after `suspect_multiplier` idle-heartbeat
    /// intervals of silence (the death deadline is
    /// `idle_heartbeat × suspect_multiplier`, so retuning the heartbeat
    /// cadence retunes the deadline with it instead of leaving a stale
    /// absolute timeout). Only enforced when heartbeats are enabled:
    /// without them, silence is not evidence of death.
    pub suspect_multiplier: u32,
    /// How long each blocking-receive slice waits on the inner transport
    /// between health-board checks.
    pub poll: Duration,
}

impl Default for LivenessConfig {
    fn default() -> Self {
        LivenessConfig {
            heartbeat_every_ops: 0,
            idle_heartbeat: Duration::from_millis(25),
            suspect_multiplier: 400, // 25 ms × 400 = 10 s
            poll: Duration::from_millis(1),
        }
    }
}

impl LivenessConfig {
    /// Heartbeats every `every_ops` sends, suspicion after roughly
    /// `suspect_after` of silence (rounded up to a whole number of
    /// idle-heartbeat intervals, minimum one).
    pub fn heartbeats(every_ops: u64, suspect_after: Duration) -> Self {
        let base = LivenessConfig::default();
        let interval = base.idle_heartbeat.as_nanos().max(1);
        let multiplier = suspect_after.as_nanos().div_ceil(interval).max(1) as u32;
        LivenessConfig {
            heartbeat_every_ops: every_ops,
            suspect_multiplier: multiplier,
            ..base
        }
    }

    /// The silence deadline: a peer unheard-from for longer than this is
    /// declared dead.
    pub fn suspect_after(&self) -> Duration {
        self.idle_heartbeat * self.suspect_multiplier
    }
}

/// Mesh-wide death registry, shared by every [`LivenessMonitor`] of one
/// mesh. The first reason recorded for a rank wins.
pub struct HealthBoard {
    any_dead: AtomicBool,
    dead: Mutex<Vec<Option<String>>>,
}

impl HealthBoard {
    /// A board for a `world`-rank mesh with every rank alive.
    pub fn new(world: usize) -> Arc<HealthBoard> {
        Arc::new(HealthBoard {
            any_dead: AtomicBool::new(false),
            dead: Mutex::new(vec![None; world]),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Option<String>>> {
        // A poisoned board must still report deaths — that is its job.
        self.dead.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record that `rank` died with `reason`. Idempotent; the first
    /// reason is kept.
    pub fn mark_dead(&self, rank: usize, reason: &str) {
        let mut dead = self.lock();
        if dead[rank].is_none() {
            dead[rank] = Some(reason.to_string());
        }
        self.any_dead.store(true, Ordering::Release);
    }

    /// Is `rank` marked dead?
    pub fn is_dead(&self, rank: usize) -> bool {
        self.any_dead.load(Ordering::Acquire) && self.lock()[rank].is_some()
    }

    /// The recorded death reason for `rank`, if any.
    pub fn reason(&self, rank: usize) -> Option<String> {
        if !self.any_dead.load(Ordering::Acquire) {
            return None;
        }
        self.lock()[rank].clone()
    }

    /// Lowest-ranked dead peer other than `me`, with its reason.
    /// The fast path is one relaxed atomic load.
    pub fn first_dead_except(&self, me: usize) -> Option<(usize, String)> {
        if !self.any_dead.load(Ordering::Acquire) {
            return None;
        }
        self.lock()
            .iter()
            .enumerate()
            .find(|(rank, slot)| *rank != me && slot.is_some())
            .map(|(rank, slot)| (rank, slot.clone().expect("slot is Some")))
    }
}

/// Handle through which the runtime reports an endpoint's own death
/// (worker panic) to its mesh. Obtained via [`Transport::death_handle`]
/// *before* the transport is consumed by the worker closure.
#[derive(Clone)]
pub struct DeathHandle {
    rank: usize,
    board: Option<Arc<HealthBoard>>,
}

impl DeathHandle {
    /// A handle that discards reports (plain, unmonitored transports).
    pub fn noop() -> Self {
        DeathHandle {
            rank: 0,
            board: None,
        }
    }

    /// A handle reporting `rank`'s death to `board`.
    pub fn new(rank: usize, board: Arc<HealthBoard>) -> Self {
        DeathHandle {
            rank,
            board: Some(board),
        }
    }

    /// Record the owning rank as dead. No-op without a board.
    pub fn mark_dead(&self, reason: &str) {
        if let Some(board) = &self.board {
            board.mark_dead(self.rank, reason);
        }
    }
}

struct MonState {
    /// Virtual clock: application messages sent + received by this
    /// endpoint (heartbeats excluded).
    ops: u64,
    /// Application sends since the last op-driven heartbeat.
    sends_since_hb: u64,
    /// Next heartbeat sequence number.
    hb_seq: u64,
    /// `ops` value when each peer was last heard from (0 = never).
    last_seen: Vec<u64>,
    /// Wall-clock when each peer was last heard from.
    last_heard: Vec<Instant>,
    /// Wall-clock of the last idle (blocked-in-recv) heartbeat.
    last_idle_hb: Instant,
    /// Dead peers this endpoint has acknowledged (failed over from):
    /// liveness checks skip them so the survivors keep making progress.
    acked: Vec<bool>,
}

/// Transport wrapper enforcing the no-hang guarantee: every blocking
/// call either progresses or returns [`CommError::PeerDead`].
pub struct LivenessMonitor<T: Transport> {
    inner: T,
    cfg: LivenessConfig,
    board: Arc<HealthBoard>,
    state: RefCell<MonState>,
}

impl<T: Transport> LivenessMonitor<T> {
    /// Wrap `inner`, sharing `board` with the rest of the mesh.
    pub fn new(inner: T, cfg: LivenessConfig, board: Arc<HealthBoard>) -> Self {
        let world = inner.world_size();
        let now = Instant::now();
        LivenessMonitor {
            inner,
            cfg,
            board,
            state: RefCell::new(MonState {
                ops: 0,
                sends_since_hb: 0,
                hb_seq: 0,
                last_seen: vec![0; world],
                last_heard: vec![now; world],
                last_idle_hb: now,
                acked: vec![false; world],
            }),
        }
    }

    /// The shared health board.
    pub fn board(&self) -> &Arc<HealthBoard> {
        &self.board
    }

    fn heartbeats_enabled(&self) -> bool {
        self.cfg.heartbeat_every_ops > 0
    }

    fn peer_dead(&self, state: &MonState, rank: usize, reason: String) -> CommError {
        CommError::PeerDead {
            rank,
            last_seen: state.last_seen[rank],
            reason,
        }
    }

    /// Fail if any unacknowledged peer is marked dead on the board.
    fn check_board(&self, state: &MonState) -> Result<(), CommError> {
        if !state.acked.iter().any(|&a| a) {
            return match self.board.first_dead_except(self.inner.rank()) {
                Some((rank, reason)) => Err(self.peer_dead(state, rank, reason)),
                None => Ok(()),
            };
        }
        let me = self.inner.rank();
        for rank in 0..self.inner.world_size() {
            if rank != me && !state.acked[rank] {
                if let Some(reason) = self.board.reason(rank) {
                    return Err(self.peer_dead(state, rank, reason));
                }
            }
        }
        Ok(())
    }

    /// Declare silent peers dead (heartbeats enabled only).
    fn check_silence(&self, state: &MonState) -> Result<(), CommError> {
        if !self.heartbeats_enabled() {
            return Ok(());
        }
        let me = self.inner.rank();
        for rank in 0..self.inner.world_size() {
            if rank != me && !state.acked[rank] {
                let age = state.last_heard[rank].elapsed();
                if age > self.cfg.suspect_after() {
                    let reason = format!(
                        "last heartbeat from rank {rank} was {age:?} ago, past the {:?} \
                         death deadline (idle_heartbeat {:?} × suspect_multiplier {})",
                        self.cfg.suspect_after(),
                        self.cfg.idle_heartbeat,
                        self.cfg.suspect_multiplier
                    );
                    self.board.mark_dead(rank, &reason);
                    return Err(self.peer_dead(state, rank, reason));
                }
            }
        }
        Ok(())
    }

    /// Send one heartbeat to every live peer. Best-effort: a peer that
    /// already tore down must not fail the sender.
    fn emit_heartbeats(&self, state: &mut MonState) {
        let me = self.inner.rank();
        let seq = state.hb_seq;
        state.hb_seq += 1;
        state.sends_since_hb = 0;
        state.last_idle_hb = Instant::now();
        for peer in 0..self.inner.world_size() {
            if peer != me && !self.board.is_dead(peer) {
                let _ = self.inner.send(peer, Message::Heartbeat { seq });
            }
        }
    }

    /// Record that `from` was heard from just now.
    fn note_heard(&self, state: &mut MonState, from: usize) {
        state.last_seen[from] = state.ops;
        state.last_heard[from] = Instant::now();
    }

    /// Filter one inner delivery: heartbeats refresh liveness and are
    /// swallowed; application messages advance the virtual clock.
    fn admit(&self, state: &mut MonState, from: usize, msg: Message) -> Option<(usize, Message)> {
        if matches!(msg, Message::Heartbeat { .. }) {
            self.note_heard(state, from);
            return None;
        }
        state.ops += 1;
        self.note_heard(state, from);
        Some((from, msg))
    }
}

impl<T: Transport> Transport for LivenessMonitor<T> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn world_size(&self) -> usize {
        self.inner.world_size()
    }

    fn send(&self, to: usize, msg: Message) -> Result<(), CommError> {
        let mut state = self.state.borrow_mut();
        if to != self.inner.rank() {
            if let Some(reason) = self.board.reason(to) {
                return Err(self.peer_dead(&state, to, reason));
            }
        }
        self.inner.send(to, msg)?;
        state.ops += 1;
        if self.heartbeats_enabled() {
            state.sends_since_hb += 1;
            if state.sends_since_hb >= self.cfg.heartbeat_every_ops {
                self.emit_heartbeats(&mut state);
            }
        }
        Ok(())
    }

    fn recv(&self) -> Result<(usize, Message), CommError> {
        let _span = crate::obs::recv_wait_hook(self.inner.rank());
        loop {
            let mut state = self.state.borrow_mut();
            self.check_board(&state)?;
            self.check_silence(&state)?;
            if self.heartbeats_enabled() && state.last_idle_hb.elapsed() >= self.cfg.idle_heartbeat
            {
                self.emit_heartbeats(&mut state);
            }
            if let Some((from, msg)) = self.inner.recv_timeout(self.cfg.poll)? {
                if let Some(delivery) = self.admit(&mut state, from, msg) {
                    return Ok(delivery);
                }
            }
        }
    }

    fn try_recv(&self) -> Result<Option<(usize, Message)>, CommError> {
        let mut state = self.state.borrow_mut();
        self.check_board(&state)?;
        self.check_silence(&state)?;
        while let Some((from, msg)) = self.inner.try_recv()? {
            if let Some(delivery) = self.admit(&mut state, from, msg) {
                return Ok(Some(delivery));
            }
        }
        Ok(None)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<(usize, Message)>, CommError> {
        let deadline = Instant::now() + timeout;
        loop {
            let mut state = self.state.borrow_mut();
            self.check_board(&state)?;
            self.check_silence(&state)?;
            if self.heartbeats_enabled() && state.last_idle_hb.elapsed() >= self.cfg.idle_heartbeat
            {
                self.emit_heartbeats(&mut state);
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            let slice = self.cfg.poll.min(deadline - now);
            if let Some((from, msg)) = self.inner.recv_timeout(slice)? {
                if let Some(delivery) = self.admit(&mut state, from, msg) {
                    return Ok(Some(delivery));
                }
            }
        }
    }

    fn stats(&self) -> TransportStats {
        self.inner.stats()
    }

    fn flush(&self) -> Result<(), CommError> {
        let state = self.state.borrow();
        self.check_board(&state)?;
        drop(state);
        self.inner.flush()
    }

    fn death_handle(&self) -> DeathHandle {
        DeathHandle::new(self.inner.rank(), self.board.clone())
    }

    fn acknowledge_dead(&self, rank: usize) {
        self.state.borrow_mut().acked[rank] = true;
    }
}

/// Wrap a whole mesh in monitors sharing one fresh [`HealthBoard`].
pub fn monitor_mesh<T: Transport>(
    endpoints: Vec<T>,
    cfg: LivenessConfig,
) -> Vec<LivenessMonitor<T>> {
    let board = HealthBoard::new(endpoints.len());
    endpoints
        .into_iter()
        .map(|t| LivenessMonitor::new(t, cfg, board.clone()))
        .collect()
}

/// An in-process channel mesh with every endpoint monitored.
pub fn monitored_mesh(world: usize, cfg: LivenessConfig) -> Vec<LivenessMonitor<LocalTransport>> {
    monitor_mesh(local_mesh(world), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(cfg: LivenessConfig) -> Vec<LivenessMonitor<LocalTransport>> {
        monitored_mesh(2, cfg)
    }

    #[test]
    fn passes_traffic_through_with_heartbeats_off() {
        let mut mesh = pair(LivenessConfig::default());
        let b = mesh.pop().unwrap();
        let a = mesh.pop().unwrap();
        a.send(1, Message::Barrier { epoch: 3 }).unwrap();
        assert_eq!(b.recv().unwrap(), (0, Message::Barrier { epoch: 3 }));
        // No heartbeats leaked into the channel.
        assert!(b.try_recv().unwrap().is_none());
        assert!(a.try_recv().unwrap().is_none());
    }

    #[test]
    fn blocking_recv_on_marked_dead_peer_errors_instead_of_hanging() {
        let mut mesh = pair(LivenessConfig::default());
        let _b = mesh.pop().unwrap();
        let a = mesh.pop().unwrap();
        a.board().mark_dead(1, "worker panicked: boom");
        let start = Instant::now();
        let err = a.recv().unwrap_err();
        assert!(start.elapsed() < Duration::from_secs(5), "must not hang");
        match err {
            CommError::PeerDead { rank, reason, .. } => {
                assert_eq!(rank, 1);
                assert!(reason.contains("boom"), "{reason}");
            }
            other => panic!("expected PeerDead, got {other:?}"),
        }
    }

    #[test]
    fn send_to_dead_peer_errors() {
        let mut mesh = pair(LivenessConfig::default());
        let _b = mesh.pop().unwrap();
        let a = mesh.pop().unwrap();
        a.board().mark_dead(1, "gone");
        assert!(matches!(
            a.send(1, Message::Barrier { epoch: 0 }),
            Err(CommError::PeerDead { rank: 1, .. })
        ));
    }

    #[test]
    fn heartbeats_are_emitted_every_n_sends_and_consumed() {
        let mut mesh = pair(LivenessConfig::heartbeats(2, Duration::from_secs(60)));
        let b = mesh.pop().unwrap();
        let a = mesh.pop().unwrap();
        for epoch in 0..4u64 {
            a.send(1, Message::Barrier { epoch }).unwrap();
        }
        // b sees only the four application messages, in order; the two
        // heartbeats (after sends 2 and 4) were consumed silently.
        for epoch in 0..4u64 {
            assert_eq!(b.recv().unwrap().1, Message::Barrier { epoch });
        }
        assert!(b.try_recv().unwrap().is_none());
    }

    #[test]
    fn silent_peer_is_suspected_dead_when_heartbeats_enabled() {
        let cfg = LivenessConfig {
            heartbeat_every_ops: 1,
            idle_heartbeat: Duration::from_millis(10),
            suspect_multiplier: 3, // 30 ms deadline
            ..LivenessConfig::default()
        };
        assert_eq!(cfg.suspect_after(), Duration::from_millis(30));
        let mut mesh = pair(cfg);
        let _b = mesh.pop().unwrap(); // never sends, never beats
        let a = mesh.pop().unwrap();
        std::thread::sleep(Duration::from_millis(40));
        let err = a.recv().unwrap_err();
        match err {
            CommError::PeerDead {
                rank: 1, reason, ..
            } => {
                // The diagnostic names the silence age and the deadline.
                assert!(reason.contains("last heartbeat from rank 1"), "{reason}");
                assert!(reason.contains("ago"), "{reason}");
                assert!(reason.contains("suspect_multiplier 3"), "{reason}");
            }
            other => panic!("expected PeerDead, got {other:?}"),
        }
        // Suspicion is recorded on the shared board.
        assert!(a.board().is_dead(1));
    }

    #[test]
    fn live_peer_is_never_suspected_while_beating() {
        let cfg = LivenessConfig {
            heartbeat_every_ops: 1,
            idle_heartbeat: Duration::from_millis(5),
            suspect_multiplier: 16, // 80 ms deadline
            ..LivenessConfig::default()
        };
        let mesh = monitored_mesh(2, cfg);
        let out = crate::runtime::run_on(mesh, |comm| {
            if comm.rank() == 0 {
                // Blocked waiting the whole time; rank 1's idle
                // heartbeats must keep it un-suspected.
                let (from, msg) = comm.transport().recv().unwrap();
                (from, msg)
            } else {
                // Blocked in a monitored receive (nothing will arrive):
                // the monitor's idle heartbeats keep rank 1 beaconing.
                let _ = comm
                    .transport()
                    .recv_timeout(Duration::from_millis(160))
                    .unwrap();
                comm.send(0, Message::Barrier { epoch: 9 }).unwrap();
                (0, Message::Shutdown)
            }
        });
        assert_eq!(out[0], (1, Message::Barrier { epoch: 9 }));
    }

    #[test]
    fn recv_timeout_still_expires_normally() {
        let mut mesh = pair(LivenessConfig::default());
        let _b = mesh.pop().unwrap();
        let a = mesh.pop().unwrap();
        assert!(a.recv_timeout(Duration::from_millis(5)).unwrap().is_none());
    }
}
