//! Activations and row-wise softmax, with exact backward passes.

use crate::matrix::Matrix;

/// Exact GeLU: `x · Φ(x)` with `Φ` the standard normal CDF, computed via
/// `erf`. Matches the "gelu" used by BERT-family FFNs.
pub fn gelu(x: &Matrix) -> Matrix {
    x.map(gelu_scalar)
}

fn gelu_scalar(x: f32) -> f32 {
    0.5 * x * (1.0 + erf(x as f64 / std::f64::consts::SQRT_2) as f32)
}

/// Fused bias + GeLU: adds `bias` to every row of `pre` in place (the
/// pre-activation the backward pass needs) and writes `gelu(pre + bias)`
/// into `act` (resized as needed) in the same pass — one sweep over the
/// hidden buffer instead of the three that `add_bias` + `gelu` +
/// allocation cost, and bitwise identical to the unfused sequence.
pub fn add_bias_gelu(pre: &mut Matrix, bias: &[f32], act: &mut Matrix) {
    assert_eq!(bias.len(), pre.cols(), "bias length mismatch");
    act.resize(pre.rows(), pre.cols());
    let cols = pre.cols();
    // The bias broadcast is the vectorizable half: one `add` per element
    // either way, so the SIMD sweep is bitwise identical. The GeLU itself
    // stays scalar on both paths — its erf/exp are libm calls whose exact
    // bit patterns a vector polynomial would not reproduce.
    #[cfg(target_arch = "x86_64")]
    if crate::simd::active() {
        let rows = pre.rows();
        // SAFETY: `active()` implies AVX2 was detected at runtime.
        unsafe { crate::simd::avx2::add_bias_rows(pre.data_mut(), rows, cols, bias) };
        for (p, a) in pre.data().iter().zip(act.data_mut().iter_mut()) {
            *a = gelu_scalar(*p);
        }
        return;
    }
    for (prow, arow) in pre
        .data_mut()
        .chunks_mut(cols)
        .zip(act.data_mut().chunks_mut(cols))
    {
        for ((p, a), b) in prow.iter_mut().zip(arow.iter_mut()).zip(bias) {
            *p += b;
            *a = gelu_scalar(*p);
        }
    }
}

/// d/dx GeLU(x) = Φ(x) + x·φ(x), applied to `x` and multiplied by the
/// incoming gradient `dy`.
pub fn gelu_backward(x: &Matrix, dy: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    gelu_backward_into(x, dy, &mut out);
    out
}

/// [`gelu_backward`] into a caller buffer (resized as needed).
pub fn gelu_backward_into(x: &Matrix, dy: &Matrix, out: &mut Matrix) {
    assert_eq!(x.shape(), dy.shape(), "gelu_backward shape mismatch");
    out.resize(x.rows(), x.cols());
    for (o, (xv, dv)) in out
        .data_mut()
        .iter_mut()
        .zip(x.data().iter().zip(dy.data()))
    {
        let xf = *xv as f64;
        let cdf = 0.5 * (1.0 + erf(xf / std::f64::consts::SQRT_2));
        let pdf = (-0.5 * xf * xf).exp() / (2.0 * std::f64::consts::PI).sqrt();
        *o = *dv * (cdf + xf * pdf) as f32;
    }
}

/// ReLU.
pub fn relu(x: &Matrix) -> Matrix {
    x.map(|v| v.max(0.0))
}

/// ReLU backward: pass the gradient where the pre-activation was positive.
pub fn relu_backward(x: &Matrix, dy: &Matrix) -> Matrix {
    assert_eq!(x.shape(), dy.shape(), "relu_backward shape mismatch");
    let mut out = dy.clone();
    for (o, xv) in out.data_mut().iter_mut().zip(x.data()) {
        if *xv <= 0.0 {
            *o = 0.0;
        }
    }
    out
}

/// Numerically stable softmax applied independently to each row (the gate
/// distribution over experts).
pub fn softmax_rows(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Error function via the Abramowitz & Stegun 7.1.26 rational
/// approximation (max absolute error 1.5e-7, ample for f32 activations).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::numeric_grad;

    #[test]
    fn erf_reference_values() {
        // erf(0)=0, erf(1)≈0.8427008, erf(-1)≈-0.8427008, erf(2)≈0.9953223
        assert!(erf(0.0).abs() < 2e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1e-6);
    }

    #[test]
    fn gelu_reference_values() {
        // gelu(0)=0; gelu(1)≈0.8413447; gelu(-1)≈-0.1586553
        let x = Matrix::from_rows(&[&[0.0, 1.0, -1.0]]);
        let y = gelu(&x);
        assert!(y[(0, 0)].abs() < 1e-6);
        assert!((y[(0, 1)] - 0.841_344_7).abs() < 1e-5);
        assert!((y[(0, 2)] + 0.158_655_3).abs() < 1e-5);
    }

    #[test]
    fn gelu_gradient_matches_finite_difference() {
        let xs = [-2.0f32, -0.7, -0.1, 0.0, 0.3, 1.5, 2.5];
        let x = Matrix::from_vec(1, xs.len(), xs.to_vec());
        let dy = Matrix::from_vec(1, xs.len(), vec![1.0; xs.len()]);
        let analytic = gelu_backward(&x, &dy);
        let numeric = numeric_grad(&x, |m| gelu(m).data().iter().sum::<f32>());
        assert!(
            analytic.max_abs_diff(&numeric) < 1e-2,
            "{analytic:?} vs {numeric:?}"
        );
    }

    #[test]
    fn fused_bias_gelu_matches_unfused_bitwise() {
        let mut rng = {
            use rand::SeedableRng;
            rand::rngs::StdRng::seed_from_u64(31)
        };
        let pre0 = Matrix::uniform(5, 7, 2.0, &mut rng);
        let bias: Vec<f32> = (0..7).map(|i| 0.1 * i as f32 - 0.3).collect();

        let mut unfused_pre = pre0.clone();
        unfused_pre.add_bias(&bias);
        let unfused_act = gelu(&unfused_pre);

        let mut fused_pre = pre0.clone();
        let mut fused_act = Matrix::zeros(0, 0);
        add_bias_gelu(&mut fused_pre, &bias, &mut fused_act);

        assert_eq!(fused_pre.max_abs_diff(&unfused_pre), 0.0);
        assert_eq!(fused_act.max_abs_diff(&unfused_act), 0.0);
    }

    #[test]
    fn relu_and_backward() {
        let x = Matrix::from_rows(&[&[-1.0, 2.0]]);
        assert_eq!(relu(&x).row(0), &[0.0, 2.0]);
        let dy = Matrix::from_rows(&[&[5.0, 5.0]]);
        assert_eq!(relu_backward(&x, &dy).row(0), &[0.0, 5.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[100.0, 100.0, 100.0]]);
        let s = softmax_rows(&x);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        assert!(s[(0, 2)] > s[(0, 1)] && s[(0, 1)] > s[(0, 0)]);
        // Large equal logits stay stable and uniform.
        for v in s.row(1) {
            assert!((v - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_invariant_to_shift() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let b = Matrix::from_rows(&[&[11.0, 12.0, 13.0]]);
        assert!(softmax_rows(&a).max_abs_diff(&softmax_rows(&b)) < 1e-6);
    }
}
